"""Content-addressed on-disk result cache for sweep cells.

A cell's cache key is ``sha256(canonical JSON of the cell spec +
a fingerprint of the repro source tree)``.  The spec part means a cell
is recomputed whenever any of its coordinates change; the code
fingerprint means *every* cell is recomputed when the simulator code
changes — stale results can never masquerade as current ones.

Entries are one small JSON file each, sharded by key prefix and
written atomically (temp file + :func:`os.replace`), so interrupted
sweeps resume incrementally: re-running the same grid skips every cell
that already has a result and executes only the rest.  Only successful
cells are cached — failures and timeouts always re-execute.

A parallel pickle store (:meth:`ResultCache.put_pickle` /
:meth:`ResultCache.get_pickle`) holds richer Python objects under the
same keying scheme; the benchmark suite uses it (via
``REPRO_SWEEP_CACHE``) to reuse whole characterization runs across
sessions.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import repro
from repro.obs.fsio import restore_artifact_mode
from repro.sweep.grid import canonical_json

_FINGERPRINT: Optional[str] = None

#: Minimum age before :meth:`ResultCache.gc` treats a ``*.tmp`` file as
#: an orphan from a crashed mid-write rather than an in-flight publish.
TMP_GRACE_SECONDS = 60.0


def code_fingerprint() -> str:
    """Digest of every ``.py`` file in the repro package (cached).

    Cheap enough to compute once per process (a few hundred KB of
    source) and conservative by construction: any source change
    invalidates the whole cache.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = os.path.dirname(os.path.abspath(repro.__file__))
        paths = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in filenames:
                if filename.endswith(".py"):
                    paths.append(os.path.join(dirpath, filename))
        digest = hashlib.sha256()
        for path in sorted(paths):
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


class ResultCache:
    """Content-addressed store of cell results under one directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    fingerprint:
        Code fingerprint mixed into every key; defaults to
        :func:`code_fingerprint`.  Tests inject fixed values to model
        "the code changed".
    """

    def __init__(self, root: str, fingerprint: Optional[str] = None) -> None:
        self.root = str(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key_for(self, spec_json: str) -> str:
        """Content address for a canonical spec serialization."""
        material = spec_json + "\n" + self.fingerprint
        return hashlib.sha256(material.encode()).hexdigest()

    def key_for_doc(self, doc: object) -> str:
        """Content address for any JSON-serializable spec document."""
        return self.key_for(canonical_json(doc))

    def _path(self, key: str, suffix: str) -> str:
        return os.path.join(self.root, key[:2], key + suffix)

    def _write_atomic(self, path: str, payload: bytes) -> None:
        directory = os.path.dirname(path)
        while True:
            try:
                os.makedirs(directory, exist_ok=True)
                fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            except (FileNotFoundError, FileExistsError):
                # A concurrent gc rmdir'd the shard mid-creation: either
                # between makedirs and mkstemp, or inside makedirs itself
                # (mkdir loses to another writer, then the dir vanishes
                # before the exist_ok re-check).  gc only removes *empty*
                # shards, so once our temp file exists the shard is
                # pinned; recreate and retry until it is.
                continue
            break
        try:
            # mkstemp's 0600 would make a cache written by one service
            # worker unreadable by its siblings; honor the umask.
            restore_artifact_mode(fd)
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh an entry's mtime on read so :meth:`gc`'s LRU order
        reflects *use*, not just writes — without this, the hottest
        (most-requested, never-rewritten) entries are the first size-
        pressure victims.  A concurrent gc may unlink the file between
        our read and the touch; that is just a lost refresh, not an
        error."""
        try:
            os.utime(path)
        except OSError:
            pass

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached JSON document for ``key``, or None (a miss).

        Corrupt or unreadable entries count as misses — the cell simply
        re-executes and overwrites them.
        """
        path = self._path(key, ".json")
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self._touch(path)
        self.hits += 1
        return doc

    def put(self, key: str, doc: Dict[str, object]) -> None:
        """Store ``doc`` under ``key`` (atomic overwrite)."""
        payload = json.dumps(doc, sort_keys=True).encode()
        self._write_atomic(self._path(key, ".json"), payload)

    def get_pickle(self, key: str) -> Optional[object]:
        """The cached Python object for ``key``, or None.

        Unpicklable/corrupt entries are treated as misses: the cache is
        an accelerator, never a source of truth.
        """
        path = self._path(key, ".pkl")
        try:
            with open(path, "rb") as handle:
                obj = pickle.load(handle)
        except (OSError, pickle.PickleError, AttributeError, EOFError, ImportError):
            self.misses += 1
            return None
        self._touch(path)
        self.hits += 1
        return obj

    def put_pickle(self, key: str, obj: object) -> bool:
        """Best-effort pickle store; returns False if ``obj`` cannot be
        pickled (the caller just loses the cache speedup)."""
        try:
            payload = pickle.dumps(obj)
        except (pickle.PickleError, AttributeError, TypeError):
            return False
        self._write_atomic(self._path(key, ".pkl"), payload)
        return True

    def has(self, key: str) -> bool:
        """Whether ``key`` has a JSON entry (does not touch counters)."""
        return os.path.exists(self._path(key, ".json"))

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def entries(self) -> List["CacheEntry"]:
        """Every on-disk entry (JSON and pickle), oldest first.

        Stray temp files from interrupted writes are skipped (they are
        not entries; interrupted :func:`os.replace` publishes leave
        none behind anyway).  Files that vanish mid-scan — a concurrent
        writer or a parallel gc — are silently dropped.
        """
        found: List[CacheEntry] = []
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return []
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                base, ext = os.path.splitext(name)
                if ext not in (".json", ".pkl"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                found.append(
                    CacheEntry(
                        key=base,
                        path=path,
                        kind=ext[1:],
                        bytes=int(stat.st_size),
                        mtime=float(stat.st_mtime),
                    )
                )
        found.sort(key=lambda e: (e.mtime, e.key, e.kind))
        return found

    def total_bytes(self) -> int:
        return sum(entry.bytes for entry in self.entries())

    def tmp_orphans(self, now: float, grace: float = TMP_GRACE_SECONDS) -> List["CacheEntry"]:
        """Stray ``*.tmp`` files older than ``grace`` seconds.

        A crash between ``mkstemp`` and ``os.replace`` leaves its temp
        file behind forever — it is never an entry, so age/size
        eviction cannot reach it.  Anything younger than ``grace`` is
        presumed to be an in-flight publish and left alone.
        """
        orphans: List[CacheEntry] = []
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return []
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                if now - stat.st_mtime <= grace:
                    continue
                orphans.append(
                    CacheEntry(
                        key=os.path.splitext(name)[0],
                        path=path,
                        kind="tmp",
                        bytes=int(stat.st_size),
                        mtime=float(stat.st_mtime),
                        reason="tmp",
                    )
                )
        orphans.sort(key=lambda e: (e.mtime, e.key))
        return orphans

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> "GcReport":
        """Age/size-based eviction; returns what was (or would be) cut.

        Policy, in order:

        0. orphaned ``*.tmp`` files (crashed mid-write, older than
           :data:`TMP_GRACE_SECONDS`) are always reaped;
        1. every entry older than ``max_age_seconds`` is evicted;
        2. if the survivors still exceed ``max_bytes``, the oldest are
           evicted (LRU by mtime — :meth:`put` rewrites *and*
           :meth:`get`/:meth:`get_pickle` hits refresh the stamp) until
           the total fits.

        With ``dry_run`` nothing is deleted; the report lists the same
        victims.  Eviction is safe under concurrent readers: a reader
        that loses the race simply takes a miss and recomputes, which
        is the cache's normal corruption story.
        """
        if now is None:
            now = time.time()
        entries = self.entries()
        evict: List[CacheEntry] = list(self.tmp_orphans(now))
        kept: List[CacheEntry] = []
        for entry in entries:
            if max_age_seconds is not None and now - entry.mtime > max_age_seconds:
                entry.reason = "age"
                evict.append(entry)
            else:
                kept.append(entry)
        if max_bytes is not None:
            kept_bytes = sum(entry.bytes for entry in kept)
            survivors: List[CacheEntry] = []
            for i, entry in enumerate(kept):  # oldest first
                if kept_bytes > max_bytes:
                    entry.reason = "size"
                    evict.append(entry)
                    kept_bytes -= entry.bytes
                else:
                    survivors.extend(kept[i:])
                    break
            kept = survivors
        if not dry_run:
            for entry in evict:
                try:
                    os.unlink(entry.path)
                except OSError:
                    pass
            for shard in list({os.path.dirname(e.path) for e in evict}):
                try:
                    os.rmdir(shard)  # only succeeds when emptied
                except OSError:
                    pass
        return GcReport(
            evicted=evict,
            kept=len(kept),
            kept_bytes=sum(entry.bytes for entry in kept),
            freed_bytes=sum(entry.bytes for entry in evict),
            dry_run=dry_run,
        )


@dataclass
class CacheEntry:
    """One on-disk cache file (a JSON result or a pickle artifact)."""

    key: str
    path: str
    kind: str  # "json" | "pkl" | "tmp"
    bytes: int
    mtime: float
    #: Set by :meth:`ResultCache.gc` on eviction victims:
    #: "age" | "size" | "tmp".
    reason: Optional[str] = None


@dataclass
class GcReport:
    """What one :meth:`ResultCache.gc` pass cut (or would cut)."""

    evicted: List[CacheEntry] = field(default_factory=list)
    kept: int = 0
    kept_bytes: int = 0
    freed_bytes: int = 0
    dry_run: bool = False

    def describe(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        lines = [
            f"{verb} {len(self.evicted)} entr{'y' if len(self.evicted) == 1 else 'ies'} "
            f"({self.freed_bytes} bytes); keeping {self.kept} "
            f"({self.kept_bytes} bytes)"
        ]
        for entry in self.evicted:
            age = time.time() - entry.mtime
            lines.append(
                f"  {entry.key[:16]}… .{entry.kind:<4} {entry.bytes:>9}B  "
                f"age {age / 86400:.1f}d  ({entry.reason})"
            )
        return "\n".join(lines)
