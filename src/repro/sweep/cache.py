"""Content-addressed on-disk result cache for sweep cells.

A cell's cache key is ``sha256(canonical JSON of the cell spec +
a fingerprint of the repro source tree)``.  The spec part means a cell
is recomputed whenever any of its coordinates change; the code
fingerprint means *every* cell is recomputed when the simulator code
changes — stale results can never masquerade as current ones.

Entries are one small JSON file each, sharded by key prefix and
written atomically (temp file + :func:`os.replace`), so interrupted
sweeps resume incrementally: re-running the same grid skips every cell
that already has a result and executes only the rest.  Only successful
cells are cached — failures and timeouts always re-execute.

A parallel pickle store (:meth:`ResultCache.put_pickle` /
:meth:`ResultCache.get_pickle`) holds richer Python objects under the
same keying scheme; the benchmark suite uses it (via
``REPRO_SWEEP_CACHE``) to reuse whole characterization runs across
sessions.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Optional

import repro
from repro.sweep.grid import canonical_json

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` file in the repro package (cached).

    Cheap enough to compute once per process (a few hundred KB of
    source) and conservative by construction: any source change
    invalidates the whole cache.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = os.path.dirname(os.path.abspath(repro.__file__))
        paths = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in filenames:
                if filename.endswith(".py"):
                    paths.append(os.path.join(dirpath, filename))
        digest = hashlib.sha256()
        for path in sorted(paths):
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


class ResultCache:
    """Content-addressed store of cell results under one directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    fingerprint:
        Code fingerprint mixed into every key; defaults to
        :func:`code_fingerprint`.  Tests inject fixed values to model
        "the code changed".
    """

    def __init__(self, root: str, fingerprint: Optional[str] = None) -> None:
        self.root = str(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key_for(self, spec_json: str) -> str:
        """Content address for a canonical spec serialization."""
        material = spec_json + "\n" + self.fingerprint
        return hashlib.sha256(material.encode()).hexdigest()

    def key_for_doc(self, doc: object) -> str:
        """Content address for any JSON-serializable spec document."""
        return self.key_for(canonical_json(doc))

    def _path(self, key: str, suffix: str) -> str:
        return os.path.join(self.root, key[:2], key + suffix)

    def _write_atomic(self, path: str, payload: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached JSON document for ``key``, or None (a miss).

        Corrupt or unreadable entries count as misses — the cell simply
        re-executes and overwrites them.
        """
        try:
            with open(self._path(key, ".json")) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return doc

    def put(self, key: str, doc: Dict[str, object]) -> None:
        """Store ``doc`` under ``key`` (atomic overwrite)."""
        payload = json.dumps(doc, sort_keys=True).encode()
        self._write_atomic(self._path(key, ".json"), payload)

    def get_pickle(self, key: str) -> Optional[object]:
        """The cached Python object for ``key``, or None.

        Unpicklable/corrupt entries are treated as misses: the cache is
        an accelerator, never a source of truth.
        """
        try:
            with open(self._path(key, ".pkl"), "rb") as handle:
                obj = pickle.load(handle)
        except (OSError, pickle.PickleError, AttributeError, EOFError, ImportError):
            self.misses += 1
            return None
        self.hits += 1
        return obj

    def put_pickle(self, key: str, obj: object) -> bool:
        """Best-effort pickle store; returns False if ``obj`` cannot be
        pickled (the caller just loses the cache speedup)."""
        try:
            payload = pickle.dumps(obj)
        except (pickle.PickleError, AttributeError, TypeError):
            return False
        self._write_atomic(self._path(key, ".pkl"), payload)
        return True

    def has(self, key: str) -> bool:
        """Whether ``key`` has a JSON entry (does not touch counters)."""
        return os.path.exists(self._path(key, ".json"))

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
