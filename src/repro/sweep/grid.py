"""Declarative experiment grids and their expansion into cells.

The paper's methodology is a grid — applications x processor counts x
strategies x network configurations — and every scaling or ablation
study on top of it is too.  A :class:`GridSpec` declares the axes
(app, mesh/topology, coherence protocol, injection rate scale, seed);
:meth:`GridSpec.expand` turns it into a deterministic list of
:class:`CellSpec` cells, each one an independent unit of work the
runner (:mod:`repro.sweep.runner`) can execute, retry, cache and
aggregate.

Everything here is JSON-serializable both ways: a cell's
:meth:`CellSpec.canonical_json` is the content-address the result
cache keys on, and a grid can be written to / loaded from a grid file
for repeatable studies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.apps import MESSAGE_PASSING_APPS, SHARED_MEMORY_APPS
from repro.core.options import RunOptions
from repro.mesh.config import MeshConfig
from repro.mesh.patterns import pattern_for_config, registered_patterns

#: Default (laptop-scale) problem sizes per application, used when a
#: grid does not override them.  Deliberately smaller than the
#: benchmark sizes: a sweep multiplies every cell by the whole grid.
DEFAULT_APP_PARAMS: Dict[str, Dict[str, object]] = {
    "1d-fft": {"n": 64},
    "is": {"n": 512, "buckets": 32},
    "cholesky": {"n": 24, "density": 0.2},
    "nbody": {"n": 32, "steps": 2},
    "maxflow": {"n": 16, "extra_edges": 24},
    "3d-fft": {"n": 8},
    "mg": {"n": 16, "cycles": 1},
}

#: Protocol axis value used for message-passing cells, where the
#: coherence protocol does not apply (the static strategy has none).
NO_PROTOCOL = "n/a"

_KNOWN_PROTOCOLS = ("invalidate", "update")


def _freeze_params(params: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class CellSpec:
    """One fully-specified experiment cell (hashable, picklable).

    A cell characterizes ``app`` (with ``params``) on ``mesh``, then
    drives the mesh with synthetic traffic at ``rate_scale`` times the
    characterized injection rate, ``messages_per_source`` messages per
    source, seeded from ``seed``.  ``protocol`` selects the coherence
    protocol for shared-memory apps (:data:`NO_PROTOCOL` otherwise).

    A *pattern* cell sets ``pattern`` to a registered synthetic traffic
    pattern name instead: the cell then drives ``mesh`` directly with
    that pattern (tornado, transpose, hotspot, ...) at a load scaled by
    ``rate_scale`` -- no application characterization involved.  For
    these cells ``app`` equals the pattern name (so comparison tables
    label rows uniformly) and ``protocol`` is :data:`NO_PROTOCOL`.
    ``pattern`` is omitted from the serialized form when ``None``,
    keeping every pre-existing cache key stable.

    ``options`` (a frozen, hashable
    :class:`~repro.core.options.RunOptions`) configures the kernel for
    both runs.  It is part of the cell's identity: a non-default
    bundle enters ``canonical_json`` and therefore the cache key (so a
    heap-scheduler replication never aliases a calendar one), while
    the default ``None`` is omitted, keeping every pre-existing cache
    key stable.
    """

    app: str
    params: Tuple[Tuple[str, object], ...]
    mesh: str
    protocol: str
    rate_scale: float
    seed: int
    messages_per_source: int
    options: Optional[RunOptions] = None
    pattern: Optional[str] = None

    @property
    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def mesh_config(self) -> MeshConfig:
        return MeshConfig.parse(self.mesh)

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "app": self.app,
            "params": self.params_dict,
            "mesh": self.mesh,
            "protocol": self.protocol,
            "rate_scale": self.rate_scale,
            "seed": self.seed,
            "messages_per_source": self.messages_per_source,
        }
        if self.options is not None:
            doc["options"] = self.options.as_dict()
        if self.pattern is not None:
            doc["pattern"] = self.pattern
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "CellSpec":
        options_doc = doc.get("options")
        pattern_doc = doc.get("pattern")
        return cls(
            app=str(doc["app"]),
            params=_freeze_params(doc.get("params", {})),  # type: ignore[arg-type]
            mesh=str(doc["mesh"]),
            protocol=str(doc.get("protocol", NO_PROTOCOL)),
            rate_scale=float(doc["rate_scale"]),  # type: ignore[arg-type]
            seed=int(doc["seed"]),  # type: ignore[arg-type]
            messages_per_source=int(doc["messages_per_source"]),  # type: ignore[arg-type]
            options=(
                RunOptions.from_dict(options_doc)  # type: ignore[arg-type]
                if options_doc is not None
                else None
            ),
            pattern=str(pattern_doc) if pattern_doc is not None else None,
        )

    def canonical_json(self) -> str:
        """Stable serialization: the cache's content-address input."""
        return canonical_json(self.as_dict())

    @property
    def cell_id(self) -> str:
        """Short human-readable cell label for progress/status lines."""
        params = ",".join(f"{k}={v}" for k, v in self.params)
        protocol = "" if self.protocol == NO_PROTOCOL else f" {self.protocol}"
        return (
            f"{self.app}[{params}]@{self.mesh}{protocol} "
            f"x{self.rate_scale:g} s{self.seed}"
        )

    def seed_sequence(self) -> np.random.SeedSequence:
        """Deterministic per-cell seed root.

        Mixes the grid's seed-axis value with a digest of the cell's
        identity, so two cells that share a grid seed but differ in any
        other coordinate still get decorrelated streams — without any
        ad-hoc ``seed + offset`` arithmetic.
        """
        digest = hashlib.sha256(self.canonical_json().encode()).digest()
        entropy = int.from_bytes(digest[:16], "big")
        return np.random.SeedSequence([self.seed, entropy])


def canonical_json(doc: object) -> str:
    """Canonical (sorted, minimal) JSON used for content addressing."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class GridSpec:
    """A declarative experiment grid (build with :func:`make_grid`).

    Attributes
    ----------
    apps:
        Application names from the suite registry.
    app_params:
        Frozen per-app parameter overrides; apps not listed use
        :data:`DEFAULT_APP_PARAMS`.
    meshes:
        Topology specs in the :meth:`TopologySpec.parse
        <repro.mesh.spec.TopologySpec.parse>` grammar (``"4x2"``,
        ``"4x4x2:torus"``, ``"chiplet(4x4,hubs=2)"``).
    protocols:
        Coherence protocols for shared-memory cells; message-passing
        cells collapse this axis to :data:`NO_PROTOCOL` (running the
        same static-strategy cell once per protocol would duplicate
        identical work under different cache keys).
    rate_scales:
        Injection-rate multipliers for the synthetic drive.
    seeds:
        Seed-axis values (one cell per seed: replications).
    messages_per_source:
        Messages each source injects in the synthetic drive.
    options:
        Kernel/run knobs applied to every cell (scheduler choice,
        stall/leak checks); None leaves the cells on the defaults and
        their cache keys unchanged.
    patterns:
        Registered synthetic traffic pattern names (tornado, transpose,
        hotspot, ...): each adds pattern cells over the mesh x
        rate-scale x seed axes, alongside (or instead of) the app
        cells, so one sweep emits topology x pattern x load comparison
        tables.
    """

    apps: Tuple[str, ...]
    app_params: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]
    meshes: Tuple[str, ...]
    protocols: Tuple[str, ...]
    rate_scales: Tuple[float, ...]
    seeds: Tuple[int, ...]
    messages_per_source: int
    options: Optional[RunOptions] = None
    patterns: Tuple[str, ...] = ()

    def params_for(self, app: str) -> Dict[str, object]:
        for name, params in self.app_params:
            if name == app:
                return dict(params)
        return dict(DEFAULT_APP_PARAMS.get(app, {}))

    def expand(self) -> List[CellSpec]:
        """All cells, in a deterministic nested-axis order."""
        cells: List[CellSpec] = []
        for app in self.apps:
            params = _freeze_params(self.params_for(app))
            protocols = self.protocols if app in SHARED_MEMORY_APPS else (NO_PROTOCOL,)
            for mesh in self.meshes:
                for protocol in protocols:
                    for rate_scale in self.rate_scales:
                        for seed in self.seeds:
                            cells.append(
                                CellSpec(
                                    app=app,
                                    params=params,
                                    mesh=mesh,
                                    protocol=protocol,
                                    rate_scale=rate_scale,
                                    seed=seed,
                                    messages_per_source=self.messages_per_source,
                                    options=self.options,
                                )
                            )
        for pattern in self.patterns:
            for mesh in self.meshes:
                for rate_scale in self.rate_scales:
                    for seed in self.seeds:
                        cells.append(
                            CellSpec(
                                app=pattern,
                                params=(),
                                mesh=mesh,
                                protocol=NO_PROTOCOL,
                                rate_scale=rate_scale,
                                seed=seed,
                                messages_per_source=self.messages_per_source,
                                options=self.options,
                                pattern=pattern,
                            )
                        )
        return cells

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "apps": list(self.apps),
            "app_params": {name: dict(params) for name, params in self.app_params},
            "meshes": list(self.meshes),
            "protocols": list(self.protocols),
            "rate_scales": list(self.rate_scales),
            "seeds": list(self.seeds),
            "messages_per_source": self.messages_per_source,
        }
        if self.options is not None:
            doc["options"] = self.options.as_dict()
        if self.patterns:
            doc["patterns"] = list(self.patterns)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "GridSpec":
        options_doc = doc.get("options")
        return make_grid(
            apps=doc.get("apps", ()),  # type: ignore[arg-type]
            app_params=doc.get("app_params"),  # type: ignore[arg-type]
            meshes=doc.get("meshes", ("4x2",)),  # type: ignore[arg-type]
            protocols=doc.get("protocols", ("invalidate",)),  # type: ignore[arg-type]
            rate_scales=doc.get("rate_scales", (1.0,)),  # type: ignore[arg-type]
            seeds=doc.get("seeds", (0,)),  # type: ignore[arg-type]
            messages_per_source=int(doc.get("messages_per_source", 120)),  # type: ignore[arg-type]
            options=(
                RunOptions.from_dict(options_doc)  # type: ignore[arg-type]
                if options_doc is not None
                else None
            ),
            patterns=doc.get("patterns", ()),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json_file(cls, path: str) -> "GridSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def make_grid(
    apps: Sequence[str],
    app_params: Optional[Mapping[str, Mapping[str, object]]] = None,
    meshes: Sequence[str] = ("4x2",),
    protocols: Sequence[str] = ("invalidate",),
    rate_scales: Sequence[float] = (1.0,),
    seeds: Sequence[int] = (0,),
    messages_per_source: int = 120,
    options: Optional[RunOptions] = None,
    patterns: Sequence[str] = (),
) -> GridSpec:
    """Validate axes and build a :class:`GridSpec`."""
    known_apps = SHARED_MEMORY_APPS + MESSAGE_PASSING_APPS
    apps = tuple(apps)
    patterns = tuple(patterns)
    if not apps and not patterns:
        raise ValueError("grid needs at least one app or pattern")
    for app in apps:
        if app not in known_apps:
            raise ValueError(
                f"unknown application {app!r}; choose from {sorted(known_apps)}"
            )
    meshes = tuple(meshes)
    if not meshes:
        raise ValueError("grid needs at least one mesh")
    for mesh in meshes:
        MeshConfig.parse(mesh)  # validates eagerly, at declaration time
    for name in patterns:
        if name not in registered_patterns():
            raise ValueError(
                f"unknown pattern {name!r}; registered: "
                + ", ".join(registered_patterns())
            )
        for mesh in meshes:
            # Fail at declaration time when a pattern cannot target a
            # mesh (e.g. transpose on non-palindromic dims).
            pattern_for_config(name, MeshConfig.parse(mesh))
    protocols = tuple(protocols)
    if not protocols:
        raise ValueError("grid needs at least one protocol")
    for protocol in protocols:
        if protocol not in _KNOWN_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {_KNOWN_PROTOCOLS}"
            )
    rate_scales = tuple(float(s) for s in rate_scales)
    if not rate_scales or any(s <= 0 for s in rate_scales):
        raise ValueError(f"rate_scales must be positive, got {rate_scales}")
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("grid needs at least one seed")
    if messages_per_source < 1:
        raise ValueError(
            f"messages_per_source must be >= 1, got {messages_per_source}"
        )
    params = app_params or {}
    for name in params:
        if name not in apps:
            raise ValueError(f"app_params given for {name!r}, not in grid apps {apps}")
    frozen_params = tuple(
        sorted((name, _freeze_params(p)) for name, p in params.items())
    )
    if options is not None and not isinstance(options, RunOptions):
        options = RunOptions.from_dict(options)  # type: ignore[arg-type]
    return GridSpec(
        apps=apps,
        app_params=frozen_params,
        meshes=meshes,
        protocols=protocols,
        rate_scales=rate_scales,
        seeds=seeds,
        messages_per_source=messages_per_source,
        options=options,
        patterns=patterns,
    )
