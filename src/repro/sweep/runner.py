"""Parallel sweep execution: worker pool, timeouts, retries, isolation.

:func:`run_sweep` takes an expanded grid and executes every cell that
is not already in the result cache, on a
:class:`concurrent.futures.ProcessPoolExecutor` when ``jobs > 1`` or
inline when ``jobs == 1``.  Cells are isolated: a cell that raises or
hangs becomes a structured failure row — after its bounded retries are
exhausted — and the sweep continues.

Timeouts are enforced *inside* the worker with an interval timer
(``SIGALRM``), so a hung cell raises :class:`CellTimeoutError` through
the normal future path and the worker slot is reclaimed immediately.
A supervisor-side deadline (twice the timeout plus a grace period)
backstops cells the alarm cannot interrupt (e.g. stuck in C code); a
worker abandoned that way poisons the pool, which is then torn down
without waiting once the sweep drains.

Per-cell seeding is deterministic: each cell derives an independent
root from :meth:`~repro.sweep.grid.CellSpec.seed_sequence`
(``np.random.SeedSequence``), and the synthetic generator spawns one
child stream per source from it — results are reproducible cell by
cell regardless of worker scheduling.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import SHARED_MEMORY_APPS, create_app
from repro.coherence.config import CoherenceConfig
from repro.core.loadsweep import measure_load_point
from repro.core.methodology import (
    characterize_message_passing,
    characterize_shared_memory,
)
from repro.core.options import RunOptions
from repro.obs.heartbeat import HEARTBEAT_SUFFIX, safe_label, write_status_record
from repro.obs.report import report_from_summary
from repro.sweep.aggregate import SweepResult
from repro.sweep.cache import ResultCache
from repro.sweep.grid import NO_PROTOCOL, CellSpec, GridSpec

#: A cell function maps a cell-spec dict to a run-report dict.  The
#: default is :func:`execute_cell`; tests inject failing/hanging ones.
#: When the sweep runs with ``heartbeat_dir``, the function is called
#: with an extra ``heartbeat=<path>`` keyword (the per-cell stream).
CellFunction = Callable[[Dict[str, object]], Dict[str, object]]

#: Extra supervisor-side wait beyond ``2 * timeout`` before a cell is
#: declared hung despite the in-worker alarm.
_DEADLINE_GRACE = 5.0


class CellTimeoutError(Exception):
    """A cell exceeded its wall-clock budget."""


def _classify_failure(error: BaseException) -> Tuple[str, str, List[str]]:
    """Map a cell exception to ``(status, message, failure_log)``.

    Deadlocked and leaky simulations get their own statuses so a sweep
    over thousands of unattended cells reports *diagnosed* failures;
    the wait-for cycle / leak audit carried in the exception message
    becomes the row's ``failure_log``.  Matching is by exception name,
    which survives worker-pool pickling of exception subclasses.
    """
    name = type(error).__name__
    if name == "DeadlockError":
        status = "deadlock"
    elif name in ("FacilityLeakError", "StallError"):
        status = "leak" if name == "FacilityLeakError" else "stall"
    else:
        status = "error"
    message = f"{name}: {error}"
    failure_log = [line for line in str(error).splitlines() if line]
    return status, message, failure_log


def _raise_timeout(signum, frame):  # pragma: no cover - signal context
    raise CellTimeoutError()


def _invoke(
    fn: CellFunction,
    spec_doc: Dict[str, object],
    timeout: Optional[float],
    heartbeat: Optional[str] = None,
):
    """Run ``fn`` under an interval-timer timeout (worker entry point).

    Module-level so it pickles into pool workers.  Falls back to no
    in-worker enforcement on platforms without ``SIGALRM`` (the
    supervisor deadline still applies).  ``heartbeat`` (a per-cell
    stream path, *not* part of the cell's cache identity) is forwarded
    as a keyword only when set, so plain single-argument cell functions
    keep working on heartbeat-less sweeps.
    """

    def call():
        if heartbeat is not None:
            return fn(spec_doc, heartbeat=heartbeat)
        return fn(spec_doc)

    if not timeout or not hasattr(signal, "SIGALRM"):
        return call()
    if threading.current_thread() is not threading.main_thread():
        # signal.signal/setitimer raise ValueError off the main thread
        # (embedders run cells on worker threads); fall back to no
        # in-worker enforcement — the supervisor deadline still applies.
        return call()
    previous_handler = signal.signal(signal.SIGALRM, _raise_timeout)
    armed_at = time.monotonic()
    prev_delay, prev_interval = signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return call()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if prev_delay:
            # Re-arm whatever itimer our caller had running rather than
            # silently zeroing it; if it expired while ours was armed,
            # fire it (almost) immediately under the restored handler.
            remaining = prev_delay - (time.monotonic() - armed_at)
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), prev_interval
            )


def execute_cell(
    spec_doc: Dict[str, object], heartbeat: Optional[str] = None
) -> Dict[str, object]:
    """Execute one grid cell end to end; returns a run-report dict.

    Characterizes the cell's application on its mesh (with the cell's
    coherence protocol for shared-memory apps), then drives the same
    mesh with synthetic traffic at the cell's rate scale and reports
    the synthetic run in the versioned run-report schema
    (:mod:`repro.obs.report`), with the load-point measurements in
    ``extra``.

    ``heartbeat`` overlays a per-cell heartbeat stream path onto the
    cell's options for this execution only — the supervisor's
    ``--heartbeat-dir`` plumbing.  It deliberately stays out of the
    report's recorded ``options`` (and out of the cache key): where a
    sweep's progress was watched must not re-key its results.

    Pattern cells (``spec.pattern`` set) skip characterization entirely
    and drive the mesh with the named synthetic pattern instead.
    """
    spec = CellSpec.from_dict(spec_doc)
    if spec.pattern is not None:
        return _execute_pattern_cell(spec, heartbeat)
    started = time.perf_counter()
    mesh = spec.mesh_config()
    app = create_app(spec.app, **spec.params_dict)
    options = spec.options
    if heartbeat is not None:
        run_options = (options or RunOptions()).with_(heartbeat=heartbeat)
    else:
        run_options = options
    if spec.app in SHARED_MEMORY_APPS:
        coherence = (
            CoherenceConfig(protocol=spec.protocol)
            if spec.protocol != NO_PROTOCOL
            else None
        )
        run = characterize_shared_memory(
            app, mesh_config=mesh, coherence_config=coherence, options=run_options
        )
    else:
        run = characterize_message_passing(app, mesh_config=mesh, options=run_options)
    cell_seed = int(spec.seed_sequence().generate_state(1)[0])
    measurement = measure_load_point(
        run.characterization,
        mesh_config=mesh,
        rate_scale=spec.rate_scale,
        messages_per_source=spec.messages_per_source,
        seed=cell_seed,
        options=run_options,
    )
    point = measurement.point
    # One summary pass serves both the extra fields and the report --
    # and works unchanged when the log is a streaming (spilled) one.
    stats = measurement.log.summary()
    report = report_from_summary(
        stats,
        app=spec.app,
        strategy=run.characterization.strategy,
        mesh=spec.mesh,
        params=spec.params_dict,
        wall_seconds=time.perf_counter() - started,
        extra={
            "source": "sweep",
            "protocol": spec.protocol,
            "options": options.as_dict() if options is not None else None,
            "rate_scale": spec.rate_scale,
            "seed": spec.seed,
            "cell_seed": cell_seed,
            "requested_rate": point.requested_rate,
            "achieved_rate": point.achieved_rate,
            "offered_rate": stats.offered_rate,
            "efficiency": point.efficiency,
        },
    )
    return report.as_dict()


def _execute_pattern_cell(
    spec: CellSpec, heartbeat: Optional[str] = None
) -> Dict[str, object]:
    """Execute a synthetic-pattern cell; returns a run-report dict.

    Builds the cell's pattern against its mesh (dims-aware for
    mesh/torus specs) and drives it open-loop with per-source Poisson
    sources; ``rate_scale`` scales the offered load by shrinking the
    mean inter-injection gap.  The report uses the pattern name as both
    ``app`` and ``strategy`` axis values, so topology x pattern x load
    comparison tables line up with application rows.
    """
    from repro.mesh.patterns import drive_pattern, pattern_for_config

    started = time.perf_counter()
    if heartbeat is not None:
        write_status_record(heartbeat, spec.cell_id, "running")
    mesh = spec.mesh_config()
    pattern = pattern_for_config(spec.pattern, mesh)
    cell_seed = int(spec.seed_sequence().generate_state(1)[0])
    mean_gap = 10.0 / spec.rate_scale
    log = drive_pattern(
        pattern,
        mesh,
        messages_per_source=spec.messages_per_source,
        mean_gap=mean_gap,
        seed=cell_seed,
    )
    stats = log.summary()
    report = report_from_summary(
        stats,
        app=spec.pattern,
        strategy="pattern",
        mesh=spec.mesh,
        params=spec.params_dict,
        wall_seconds=time.perf_counter() - started,
        extra={
            "source": "sweep",
            "pattern": spec.pattern,
            "protocol": spec.protocol,
            "options": spec.options.as_dict() if spec.options is not None else None,
            "rate_scale": spec.rate_scale,
            "seed": spec.seed,
            "cell_seed": cell_seed,
            "mean_gap": mean_gap,
            "offered_rate": stats.offered_rate,
        },
    )
    if heartbeat is not None:
        write_status_record(heartbeat, spec.cell_id, "done", append=True)
    return report.as_dict()


def _ok_row(
    spec: CellSpec,
    key: Optional[str],
    report: Dict[str, object],
    cached: bool,
    attempts: int,
) -> Dict[str, object]:
    return {
        "status": "ok",
        "cached": cached,
        "attempts": attempts,
        "cell": spec.as_dict(),
        "key": key,
        "report": report,
    }


def _failure_row(
    spec: CellSpec,
    key: Optional[str],
    status: str,
    message: str,
    attempts: int,
    failure_log: Optional[List[str]] = None,
) -> Dict[str, object]:
    row: Dict[str, object] = {
        "status": status,
        "cached": False,
        "attempts": attempts,
        "cell": spec.as_dict(),
        "key": key,
        "error": message,
    }
    if failure_log:
        row["failure_log"] = list(failure_log)
    return row


def run_sweep(
    grid: GridSpec,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.25,
    cell_fn: Optional[CellFunction] = None,
    on_progress: Optional[Callable[[Dict[str, object], int, int], None]] = None,
    heartbeat_dir: Optional[str] = None,
    cancel_event: Optional["threading.Event"] = None,
) -> SweepResult:
    """Execute every cell of ``grid``; never raises for cell failures.

    Parameters
    ----------
    grid:
        The declarative grid to expand and run.
    jobs:
        Worker processes (1 = inline in this process).
    cache:
        Optional :class:`~repro.sweep.cache.ResultCache`; hits skip
        execution, successful cells are stored back.
    timeout:
        Per-attempt wall-clock budget in seconds (None = unlimited).
    retries:
        Extra attempts after a failed/timed-out one (bounded).
    backoff:
        Base delay before retry ``k`` (grows as ``backoff * 2**(k-1)``).
    cell_fn:
        Replacement cell function (fault injection in tests); must be
        picklable when ``jobs > 1`` and accept a ``heartbeat=`` keyword
        when ``heartbeat_dir`` is used.
    on_progress:
        Called as ``on_progress(row, done, total)`` when a cell settles.
    heartbeat_dir:
        Directory receiving one JSONL heartbeat stream per cell (for
        ``repro watch``).  Purely observational: it crosses the worker
        boundary as an out-of-band keyword and never enters a cell's
        cache key, so watched and unwatched sweeps share results.
        Cells that never run a kernel here still get a record — fresh
        ``pending`` streams up front, ``cached`` on cache hits, and an
        appended ``failed`` record when retries are exhausted — so the
        fleet table always shows the whole grid.
    cancel_event:
        A :class:`threading.Event` that, once set, stops the sweep at
        the next cell boundary: no new cells start, in-flight pool
        futures are cancelled or abandoned, and the partial
        :class:`SweepResult` holds only the cells that settled.  The
        long-running service uses this for graceful shutdown — the
        cache makes re-running the settled cells free, so a cancelled
        sweep resumes where it left off.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    fn = cell_fn or execute_cell
    cells = grid.expand()
    heartbeats = _heartbeat_paths(cells, heartbeat_dir)
    rows: List[Optional[Dict[str, object]]] = [None] * len(cells)
    pending: List[Tuple[int, CellSpec, Optional[str]]] = []
    started = time.perf_counter()
    done_count = 0

    def settle(index: int, row: Dict[str, object]) -> None:
        nonlocal done_count
        rows[index] = row
        done_count += 1
        if on_progress is not None:
            on_progress(row, done_count, len(cells))

    for index, spec in enumerate(cells):
        key = cache.key_for(spec.canonical_json()) if cache else None
        if cache is not None:
            doc = cache.get(key)
            if doc is not None:
                if heartbeats is not None:
                    write_status_record(heartbeats[index], spec.cell_id, "cached")
                settle(index, _ok_row(spec, key, doc, cached=True, attempts=0))
                continue
        if heartbeats is not None:
            write_status_record(heartbeats[index], spec.cell_id, "pending")
        pending.append((index, spec, key))

    def record_success(index, spec, key, report, attempts):
        if cache is not None and key is not None:
            cache.put(key, report)
        settle(index, _ok_row(spec, key, report, cached=False, attempts=attempts))

    def record_failure(index, spec, key, status, message, attempts, failure_log=None):
        if heartbeats is not None:
            # The worker may have died without a terminal record (or
            # never started); append so its partial stream survives.
            write_status_record(
                heartbeats[index], spec.cell_id, "failed", error=message, append=True
            )
        settle(
            index, _failure_row(spec, key, status, message, attempts, failure_log)
        )

    def heartbeat_for(index: int) -> Optional[str]:
        return heartbeats[index] if heartbeats is not None else None

    cancelled = cancel_event.is_set if cancel_event is not None else (lambda: False)
    if jobs == 1 or len(pending) <= 1:
        for index, spec, key in pending:
            if cancelled():
                break
            attempt = 0
            while True:
                attempt += 1
                try:
                    report = _invoke(
                        fn, spec.as_dict(), timeout, heartbeat=heartbeat_for(index)
                    )
                except CellTimeoutError:
                    status, message = "timeout", f"cell exceeded {timeout:g}s"
                    failure_log: List[str] = []
                except Exception as error:
                    status, message, failure_log = _classify_failure(error)
                else:
                    record_success(index, spec, key, report, attempt)
                    break
                if attempt > retries or cancelled():
                    record_failure(
                        index, spec, key, status, message, attempt, failure_log
                    )
                    break
                time.sleep(backoff * 2 ** (attempt - 1))
    else:
        _run_pool(
            pending,
            fn,
            jobs,
            timeout,
            retries,
            backoff,
            record_success,
            record_failure,
            heartbeat_for,
            cancelled,
        )

    return SweepResult(
        grid=grid.as_dict(),
        rows=[row for row in rows if row is not None],
        wall_seconds=time.perf_counter() - started,
        jobs=jobs,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
        cache_enabled=cache is not None,
        cache_dir=cache.root if cache else None,
    )


def _heartbeat_paths(
    cells: List[CellSpec], heartbeat_dir: Optional[str]
) -> Optional[List[str]]:
    """One stream path per cell (collision-numbered sanitized labels)."""
    if heartbeat_dir is None:
        return None
    os.makedirs(heartbeat_dir, exist_ok=True)
    paths: List[str] = []
    used: Dict[str, int] = {}
    for spec in cells:
        stem = safe_label(spec.cell_id)
        count = used.get(stem, 0)
        used[stem] = count + 1
        if count:
            stem = f"{stem}.{count}"
        paths.append(os.path.join(heartbeat_dir, stem + HEARTBEAT_SUFFIX))
    return paths


def _run_pool(
    pending, fn, jobs, timeout, retries, backoff, record_success, record_failure,
    heartbeat_for=lambda index: None, cancelled=lambda: False,
) -> None:
    """Pool execution with supervisor-side retry queue and deadlines."""
    deadline_budget = (2.0 * timeout + _DEADLINE_GRACE) if timeout else None
    executor = ProcessPoolExecutor(max_workers=jobs)
    futures: Dict[Future, Tuple[int, CellSpec, Optional[str], int, Optional[float]]] = {}
    retry_queue: List[Tuple[float, int, CellSpec, Optional[str], int]] = []
    abandoned = False

    def submit(index, spec, key, attempt):
        future = executor.submit(
            _invoke, fn, spec.as_dict(), timeout, heartbeat_for(index)
        )
        deadline = (
            time.monotonic() + deadline_budget if deadline_budget is not None else None
        )
        futures[future] = (index, spec, key, attempt, deadline)

    try:
        for index, spec, key in pending:
            submit(index, spec, key, attempt=1)
        while futures or retry_queue:
            if cancelled():
                # Graceful stop: drop unstarted work on the floor (the
                # caller's cache-backed resume re-runs it for free) and
                # let the pool tear down without waiting.
                for future in list(futures):
                    future.cancel()
                abandoned = True
                break
            now = time.monotonic()
            for entry in list(retry_queue):
                ready_at, index, spec, key, attempt = entry
                if ready_at <= now:
                    retry_queue.remove(entry)
                    submit(index, spec, key, attempt)
            if not futures:
                time.sleep(min(0.05, backoff))
                continue
            done, _ = wait(
                set(futures), timeout=0.1, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for future in done:
                index, spec, key, attempt, _ = futures.pop(future)
                try:
                    report = future.result()
                except CellTimeoutError:
                    status, message = "timeout", f"cell exceeded {timeout:g}s"
                    failure_log: List[str] = []
                except BaseException as error:
                    status, message, failure_log = _classify_failure(error)
                else:
                    record_success(index, spec, key, report, attempt)
                    continue
                if attempt <= retries:
                    retry_queue.append(
                        (now + backoff * 2 ** (attempt - 1), index, spec, key, attempt + 1)
                    )
                else:
                    record_failure(
                        index, spec, key, status, message, attempt, failure_log
                    )
            # Backstop: a worker the alarm could not interrupt.  Its
            # slot is lost (the pool shrinks), so no retry; the sweep
            # keeps draining and the pool is killed at the end.
            for future, meta in list(futures.items()):
                index, spec, key, attempt, deadline = meta
                if deadline is not None and now > deadline:
                    del futures[future]
                    abandoned = True
                    record_failure(
                        index,
                        spec,
                        key,
                        "timeout",
                        f"cell unresponsive past {deadline_budget:g}s; worker abandoned",
                        attempt,
                    )
    finally:
        if abandoned:
            executor.shutdown(wait=False, cancel_futures=True)
            for process in list(getattr(executor, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - defensive
                    pass
        else:
            executor.shutdown(wait=True)
