"""Communication trace toolkit (static strategy plumbing).

* :class:`~repro.trace.events.CommEvent` -- one application-level
  communication event (source, destination, length, time since last
  network activity at the source -- the paper's trace record).
* :class:`~repro.trace.log.TraceLog` -- an ordered collection of events
  with per-source views and CSV persistence.
* :mod:`~repro.trace.profiler` -- the "trace profiler and analyzer"
  summarizing a trace before replay.
* :mod:`~repro.trace.replay` -- feeds a trace into the mesh simulator
  either *dependency-preserving* (per-source gaps maintained, timeline
  stretches under contention -- the paper's "intelligent" replay) or
  *open-loop* (absolute timestamps, the classic trace-driven pitfall,
  kept for the ablation).
"""

from repro.trace.events import CommEvent
from repro.trace.log import TraceLog
from repro.trace.profiler import TraceProfile, profile_trace
from repro.trace.replay import replay_trace

__all__ = ["CommEvent", "TraceLog", "TraceProfile", "profile_trace", "replay_trace"]
