"""Application-level communication event records."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_event_ids = itertools.count()


@dataclass(frozen=True)
class CommEvent:
    """One traced communication event.

    Mirrors the paper's trace/simulator input: "messages defined by
    their source, destination, length and time since the last network
    activity at the source."

    Attributes
    ----------
    src, dst:
        Rank/node ids.
    length_bytes:
        Message payload size.
    kind:
        What produced it ("p2p", "bcast", "reduce", "alltoall", ...).
    tag:
        Application tag (matching key).
    post_time:
        Absolute simulated time the send was posted.
    gap:
        Time since the previous event posted by the same source
        (``post_time`` itself for a source's first event).
    event_id:
        Unique id, auto-assigned.
    """

    src: int
    dst: int
    length_bytes: int
    kind: str
    tag: int
    post_time: float
    gap: float
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def __post_init__(self) -> None:
        if self.length_bytes < 0:
            raise ValueError(f"length_bytes must be >= 0, got {self.length_bytes}")
        if self.gap < 0:
            raise ValueError(f"gap must be >= 0, got {self.gap}")
