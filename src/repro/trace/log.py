"""Ordered trace container with per-source views and persistence."""

from __future__ import annotations

import csv
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.trace.events import CommEvent


class TraceLog:
    """All communication events of one traced run, in post order."""

    def __init__(self) -> None:
        self._events: List[CommEvent] = []
        self._last_post: Dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[CommEvent]:
        return iter(self._events)

    @property
    def events(self) -> Sequence[CommEvent]:
        """All events in post order."""
        return tuple(self._events)

    def record(
        self,
        src: int,
        dst: int,
        length_bytes: int,
        kind: str,
        tag: int,
        post_time: float,
    ) -> CommEvent:
        """Append an event, deriving its per-source gap automatically."""
        last = self._last_post.get(src)
        gap = post_time if last is None else max(post_time - last, 0.0)
        self._last_post[src] = post_time
        event = CommEvent(
            src=src,
            dst=dst,
            length_bytes=length_bytes,
            kind=kind,
            tag=tag,
            post_time=post_time,
            gap=gap,
        )
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def sources(self) -> List[int]:
        """Sorted distinct sources."""
        return sorted({e.src for e in self._events})

    def by_source(self, src: int) -> List[CommEvent]:
        """Events posted by ``src``, in post order."""
        return [e for e in self._events if e.src == src]

    def total_bytes(self) -> int:
        """Sum of payload bytes across all events."""
        return sum(e.length_bytes for e in self._events)

    def span(self) -> float:
        """Time from first to last post."""
        if not self._events:
            return 0.0
        times = [e.post_time for e in self._events]
        return max(times) - min(times)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def write_csv(self, path: str) -> None:
        """Persist the trace as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["event_id", "src", "dst", "length_bytes", "kind", "tag", "post_time", "gap"]
            )
            for e in self._events:
                writer.writerow(
                    [e.event_id, e.src, e.dst, e.length_bytes, e.kind, e.tag, e.post_time, e.gap]
                )

    @classmethod
    def read_csv(cls, path: str) -> "TraceLog":
        """Load a trace written by :meth:`write_csv`."""
        log = cls()
        with open(path, newline="") as handle:
            for row in csv.DictReader(handle):
                log._events.append(
                    CommEvent(
                        src=int(row["src"]),
                        dst=int(row["dst"]),
                        length_bytes=int(row["length_bytes"]),
                        kind=row["kind"],
                        tag=int(row["tag"]),
                        post_time=float(row["post_time"]),
                        gap=float(row["gap"]),
                        event_id=int(row["event_id"]),
                    )
                )
        return log
