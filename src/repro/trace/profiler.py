"""The trace profiler and analyzer.

Summarizes an application-level trace before replay -- per-source
message counts, byte volumes, destination spreads and gap statistics --
the paper's "trace profiler and analyzer" stage between tracing and the
network simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.trace.log import TraceLog


@dataclass(frozen=True)
class TraceProfile:
    """Aggregate view of one trace.

    Attributes
    ----------
    total_messages, total_bytes:
        Whole-trace volume.
    span:
        First-to-last post time.
    per_source_messages, per_source_bytes:
        Count/volume keyed by source rank.
    destination_matrix:
        ``matrix[src][dst]`` = messages from src to dst.
    mean_gap, cv_gap:
        Mean and coefficient of variation of per-source gaps (pooled).
    kind_counts:
        Message count per kind tag.
    """

    total_messages: int
    total_bytes: int
    span: float
    per_source_messages: Dict[int, int]
    per_source_bytes: Dict[int, int]
    destination_matrix: np.ndarray
    mean_gap: float
    cv_gap: float
    kind_counts: Dict[str, int]

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"messages: {self.total_messages}",
            f"bytes:    {self.total_bytes}",
            f"span:     {self.span:.1f}",
            f"gap mean: {self.mean_gap:.2f} (cv {self.cv_gap:.2f})",
            "kinds:    "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.kind_counts.items())),
        ]
        return "\n".join(lines)


def profile_trace(trace: TraceLog, num_nodes: int) -> TraceProfile:
    """Analyze ``trace`` over a ``num_nodes``-rank system."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    per_source_messages: Dict[int, int] = {}
    per_source_bytes: Dict[int, int] = {}
    kind_counts: Dict[str, int] = {}
    matrix = np.zeros((num_nodes, num_nodes), dtype=int)
    gaps: List[float] = []
    for event in trace:
        if event.src < 0 or event.dst < 0:
            # Without this check a negative rank would silently index
            # the destination matrix from the end.
            raise ValueError(
                f"event has negative rank (src={event.src}, dst={event.dst})"
            )
        if event.src >= num_nodes or event.dst >= num_nodes:
            raise ValueError(
                f"event touches rank {max(event.src, event.dst)} outside "
                f"{num_nodes}-node system"
            )
        per_source_messages[event.src] = per_source_messages.get(event.src, 0) + 1
        per_source_bytes[event.src] = (
            per_source_bytes.get(event.src, 0) + event.length_bytes
        )
        kind_counts[event.kind] = kind_counts.get(event.kind, 0) + 1
        matrix[event.src, event.dst] += 1
        gaps.append(event.gap)
    gap_array = np.asarray(gaps, dtype=float)
    mean_gap = float(gap_array.mean()) if gap_array.size else 0.0
    cv_gap = (
        float(gap_array.std() / gap_array.mean())
        if gap_array.size and gap_array.mean() > 0
        else 0.0
    )
    return TraceProfile(
        total_messages=len(trace),
        total_bytes=trace.total_bytes(),
        span=trace.span(),
        per_source_messages=per_source_messages,
        per_source_bytes=per_source_bytes,
        destination_matrix=matrix,
        mean_gap=mean_gap,
        cv_gap=cv_gap,
        kind_counts=kind_counts,
    )
