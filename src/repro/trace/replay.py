"""Trace replay into the mesh network simulator.

The paper feeds SP2 traces to the same 2-D mesh simulator used by the
dynamic strategy, "intelligently ... avoiding the usual pitfalls of
trace-driven simulation": absolute trace timestamps embed the traced
machine's timing, so replaying them verbatim ignores the feedback
between network contention and message generation.  The
dependency-preserving mode therefore replays each source's messages in
order, separated by the *traced gaps* ("time since the last network
activity at the source"), letting the replayed timeline stretch when
the mesh is congested.  The open-loop mode (absolute timestamps) is
retained deliberately so the pitfall can be demonstrated.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mesh.netlog import NetworkLog
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.simkernel import check_leaks, hold
from repro.trace.log import TraceLog

#: Replay modes accepted by :func:`replay_trace`.
REPLAY_MODES = ("dependency", "open-loop")


def replay_trace(
    trace: TraceLog,
    network: MeshNetwork,
    mode: str = "dependency",
    time_scale: float = 1.0,
) -> NetworkLog:
    """Feed ``trace`` through ``network``; returns the network's log.

    Parameters
    ----------
    trace:
        The application-level communication trace.
    network:
        A fresh mesh simulator (its node count must cover every rank
        in the trace).
    mode:
        ``"dependency"`` (default) preserves per-source ordering and
        gaps; ``"open-loop"`` injects at absolute trace timestamps.
    time_scale:
        Multiplier applied to traced gaps/timestamps (unit conversion
        between trace time and mesh time).
    """
    if mode not in REPLAY_MODES:
        raise ValueError(f"unknown replay mode {mode!r}; choose from {REPLAY_MODES}")
    if time_scale <= 0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    num_nodes = network.config.num_nodes
    ranks = trace.sources() + [e.dst for e in trace]
    if ranks and max(ranks) >= num_nodes:
        raise ValueError(
            f"trace touches rank {max(ranks)} but the mesh has {num_nodes} nodes"
        )

    simulator = network.simulator

    obs = network.obs
    observed = obs.enabled
    if observed:
        m_messages = obs.counter("replay.messages")
        m_stall = obs.histogram("replay.stall")
        m_stall_series = obs.time_series("replay.stall.series")

    if mode == "dependency":
        for src in trace.sources():
            events = trace.by_source(src)

            def source_process(events=events):
                # The traced schedule for this source: cumulative gaps.
                # How far injection lags behind it is the replay stall
                # (the timeline stretch congestion causes).
                expected = 0.0
                for event in events:
                    yield hold(event.gap * time_scale)
                    expected += event.gap * time_scale
                    if observed:
                        stall = max(simulator.now - expected, 0.0)
                        m_messages.inc()
                        m_stall.observe(stall)
                        m_stall_series.sample(simulator.now, stall)
                    message = NetworkMessage(
                        src=event.src,
                        dst=event.dst,
                        length_bytes=event.length_bytes,
                        kind=event.kind,
                    )
                    yield from network.transfer(message)

            simulator.process(source_process(), name=f"replay[src={src}]")
    else:
        for event in trace:
            message = NetworkMessage(
                src=event.src,
                dst=event.dst,
                length_bytes=event.length_bytes,
                kind=event.kind,
            )

            def injector(message=message):
                if observed:
                    m_messages.inc()
                yield from network.transfer(message)

            simulator.schedule(
                event.post_time * time_scale,
                lambda message=message: simulator.process(
                    injector(message), name=f"replay#{message.msg_id}"
                ),
            )

    simulator.run(check_stall=True)
    network.finalize_metrics()
    check_leaks(simulator)
    # Flush staged records into the columnar buffers before handing the
    # log to analysis, so the first derived view is pure numpy.
    network.log.seal()
    return network.log
