"""Tests for the NAS message-passing applications (3D-FFT, MG)."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.apps.mp.fft3d import FFT3DApp
from repro.apps.mp.mg import MultigridApp, jacobi_sweep, residual_field


def traffic_matrices(runtime, ranks=8):
    counts = np.zeros((ranks, ranks))
    volume = np.zeros((ranks, ranks))
    for e in runtime.trace:
        counts[e.src, e.dst] += 1
        volume[e.src, e.dst] += e.length_bytes
    return counts, volume


class TestFFT3D:
    def test_matches_numpy_fftn(self):
        FFT3DApp(n=8).run(num_ranks=8)

    def test_spatial_distribution_uniform(self):
        app = FFT3DApp(n=16)
        runtime = app.run(num_ranks=8)
        counts, _ = traffic_matrices(runtime)
        for src in range(8):
            fracs = counts[src] / counts[src].sum()
            others = np.delete(fracs, src)
            assert np.allclose(others, 1.0 / 7, atol=1e-9)

    def test_equal_block_sizes(self):
        app = FFT3DApp(n=16)
        runtime = app.run(num_ranks=8)
        sizes = {e.length_bytes for e in runtime.trace}
        assert len(sizes) == 1  # perfectly balanced personalized blocks

    def test_rejects_indivisible_n(self):
        app = FFT3DApp(n=4)
        with pytest.raises(ValueError):
            app.run(num_ranks=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            FFT3DApp(n=1)


class TestMultigridNumerics:
    def test_jacobi_reduces_residual_serial(self):
        rng = np.random.default_rng(0)
        n = 16
        h = 1.0 / n
        f = np.zeros((n + 2, n + 2, n + 2))
        f[1:-1, 1:-1, 1:-1] = rng.standard_normal((n, n, n))
        u = np.zeros_like(f)
        r0 = np.linalg.norm(residual_field(u, f, h))
        for _ in range(50):
            u = jacobi_sweep(u, f, h)
        r1 = np.linalg.norm(residual_field(u, f, h))
        assert r1 < r0 * 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            MultigridApp(n=12)  # not a power of two
        with pytest.raises(ValueError):
            MultigridApp(n=32, cycles=0)


class TestMultigridRun:
    @pytest.fixture(scope="class")
    def mg_runtime(self):
        app = MultigridApp(n=16, cycles=2)
        runtime = app.run(num_ranks=8)
        return app, runtime

    def test_residual_reduction(self, mg_runtime):
        app, _ = mg_runtime
        assert app.final_residual < app.initial_residual * app.required_reduction

    def test_p0_is_count_favorite(self, mg_runtime):
        _, runtime = mg_runtime
        counts, _ = traffic_matrices(runtime)
        for src in range(1, 8):
            fracs = counts[src] / counts[src].sum()
            assert np.argmax(fracs) == 0, f"rank {src}'s count favorite is not p0"

    def test_volume_goes_to_halo_neighbors(self, mg_runtime):
        _, runtime = mg_runtime
        _, volume = traffic_matrices(runtime)
        for src in range(1, 7):
            fracs = volume[src] / volume[src].sum()
            neighbors = fracs[src - 1] + fracs[src + 1]
            assert neighbors > 0.8, f"rank {src}'s volume is not halo-dominated"

    def test_message_kinds_present(self, mg_runtime):
        _, runtime = mg_runtime
        kinds = {e.kind for e in runtime.trace}
        assert {"halo", "reduce", "bcast", "gather"} <= kinds


class TestRegistryMP:
    def test_create_mp_apps(self):
        assert isinstance(create_app("3d-fft", n=8), FFT3DApp)
        assert isinstance(create_app("mg", n=16), MultigridApp)
