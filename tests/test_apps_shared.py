"""Tests for the five shared-memory applications.

Each application computes a real result verified against an independent
reference inside ``run()``; these tests also pin the communication
*structure* the paper reports (butterfly partners for FFT, favorite
processor for IS/Cholesky, broad sharing for Nbody, graph-driven
traffic for Maxflow).
"""

import numpy as np
import pytest

from repro.apps import create_app
from repro.apps.base import partition
from repro.apps.shared.cholesky import CholeskyApp, make_sparse_spd
from repro.apps.shared.fft1d import FFT1DApp, _bit_reverse
from repro.apps.shared.is_sort import IntegerSortApp
from repro.apps.shared.maxflow import MaxflowApp, make_flow_network
from repro.apps.shared.nbody import NbodyApp


class TestPartition:
    def test_covers_everything_once(self):
        pieces = [list(partition(100, 8, p)) for p in range(8)]
        flat = [i for piece in pieces for i in piece]
        assert flat == list(range(100))

    def test_balanced(self):
        sizes = [len(partition(100, 8, p)) for p in range(8)]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            partition(10, 0, 0)
        with pytest.raises(ValueError):
            partition(10, 4, 4)


class TestFFT1D:
    def test_bit_reverse(self):
        assert _bit_reverse(0b001, 3) == 0b100
        assert _bit_reverse(0b110, 3) == 0b011
        assert [_bit_reverse(i, 2) for i in range(4)] == [0, 2, 1, 3]

    def test_computes_correct_fft(self):
        app = FFT1DApp(n=64)
        app.run()  # verify() inside compares against numpy.fft.fft
        assert app.result is not None

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FFT1DApp(n=100)

    def test_rejects_n_not_multiple_of_p(self):
        app = FFT1DApp(n=4)  # 4 < 8 processors
        with pytest.raises(ValueError):
            app.run()

    def test_butterfly_spatial_pattern(self):
        app = FFT1DApp(n=128)
        sim = app.run()
        # Every processor's remote traffic goes only to XOR partners.
        for src in range(8):
            fracs = sim.log.destination_fractions(src, 8)
            partners = {src ^ 1, src ^ 2, src ^ 4}
            for dst in range(8):
                if dst in partners or dst == src:
                    continue
                # Non-partner traffic only from spread barrier homes.
                assert fracs[dst] < 0.25

    def test_local_phases_generate_no_early_remote_traffic(self):
        app = FFT1DApp(n=128)
        sim = app.run()
        # Stage spans 1..8 are chunk-internal for n=128, P=8 (chunk=16):
        # the earliest messages should be barrier traffic, not data.
        kinds = sim.log.kinds()
        assert "rd_req" in kinds  # remote stages did communicate


class TestIntegerSort:
    def test_ranks_sort_the_keys(self):
        IntegerSortApp(n=512, buckets=32).run()

    def test_favorite_processor_is_p0(self):
        app = IntegerSortApp(n=512, buckets=32)
        sim = app.run()
        for src in range(1, 8):
            fracs = sim.log.destination_fractions(src, 8)
            assert np.argmax(fracs) == 0, f"p{src}'s favorite is not p0"
            assert fracs[0] > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            IntegerSortApp(n=0)
        with pytest.raises(ValueError):
            IntegerSortApp(n=16, buckets=0)

    def test_different_seeds_still_sort(self):
        IntegerSortApp(n=256, buckets=16, seed=99).run()


class TestNbody:
    def test_matches_serial_reference(self):
        NbodyApp(n=32, steps=2).run()

    def test_broad_read_sharing(self):
        app = NbodyApp(n=32, steps=2)
        sim = app.run()
        # Every processor talks to most others (near-uniform pattern).
        for src in range(8):
            fracs = sim.log.destination_fractions(src, 8)
            talked_to = (fracs > 0).sum()
            assert talked_to >= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            NbodyApp(n=1)
        with pytest.raises(ValueError):
            NbodyApp(n=16, steps=0)


class TestCholesky:
    def test_spd_generator(self):
        matrix = make_sparse_spd(16, 0.2, seed=1)
        assert np.allclose(matrix, matrix.T)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.min() > 0

    def test_factorization_correct(self):
        CholeskyApp(n=24, density=0.2).run()

    def test_task_queue_makes_p0_prominent(self):
        app = CholeskyApp(n=24, density=0.2)
        sim = app.run()
        skewed = 0
        for src in range(1, 8):
            fracs = sim.log.destination_fractions(src, 8)
            if np.argmax(fracs) == 0:
                skewed += 1
        assert skewed >= 4, "central task queue should make p0 the modal target"

    def test_validation(self):
        with pytest.raises(ValueError):
            CholeskyApp(n=1)
        with pytest.raises(ValueError):
            CholeskyApp(n=16, density=2.0)


class TestMaxflow:
    def test_network_generator_has_st_path(self):
        import networkx as nx

        edges, s, t = make_flow_network(16, 20, 10, seed=3)
        graph = nx.DiGraph()
        graph.add_weighted_edges_from(edges, weight="capacity")
        assert nx.has_path(graph, s, t)
        assert nx.maximum_flow_value(graph, s, t) > 0

    def test_finds_maximum_flow(self):
        app = MaxflowApp(n=16, extra_edges=24, seed=5)
        app.run()
        assert app.flow_value is not None and app.flow_value > 0

    def test_another_instance(self):
        MaxflowApp(n=12, extra_edges=16, seed=11).run()

    def test_network_generator_validation(self):
        with pytest.raises(ValueError):
            make_flow_network(2, 0, 10, seed=1)


class TestRegistry:
    def test_create_known_apps(self):
        app = create_app("1d-fft", n=64)
        assert isinstance(app, FFT1DApp)
        assert app.n == 64

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            create_app("quicksort")
