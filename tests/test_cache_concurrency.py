"""Concurrent access to the content-addressed result cache.

The serve subsystem leans on two properties the cache has always
promised but never had cross-process tests for:

* **Atomic publish** — an entry is written to a same-shard temp file
  and :func:`os.replace`'d into place, so a reader polling the key
  sees either nothing or one complete document, never a torn write.
* **Last-writer-wins convergence** — many processes computing the same
  digest (two services sharing a cache dir, a service racing a CLI
  sweep) may all publish; every published document is valid and reads
  converge on one of them.

Real processes, not threads: ``os.replace`` atomicity and the
visibility of renamed files are filesystem behaviors that in-process
tests cannot exercise.
"""

import json
import multiprocessing
import os
import time

from repro.sweep.cache import ResultCache

#: One spec, one digest — every worker below contends on this key.
SPEC = {"app": "contended", "cell": 7}


def _cache(root):
    return ResultCache(root, fingerprint="f" * 16)


def publisher(root, barrier, writer_id, rounds):
    """Publish ``rounds`` versions of the same key, flat out."""
    cache = _cache(root)
    key = cache.key_for_doc(SPEC)
    barrier.wait()
    for round_number in range(rounds):
        cache.put(
            key,
            {
                "writer": writer_id,
                "round": round_number,
                "pad": "x" * 2048,  # big enough that a torn write is visible
            },
        )


def poller(root, barrier, stop, results):
    """Read the contended key in a tight loop, recording anomalies."""
    cache = _cache(root)
    key = cache.key_for_doc(SPEC)
    reads = 0
    torn = 0
    barrier.wait()
    while not stop.is_set():
        doc = cache.get(key)
        if doc is not None:
            reads += 1
            if set(doc) != {"writer", "round", "pad"} or len(doc["pad"]) != 2048:
                torn += 1
    results.put({"reads": reads, "torn": torn})


def gc_worker(root, barrier, stop):
    """Run eviction passes concurrently with the writers."""
    cache = _cache(root)
    barrier.wait()
    while not stop.is_set():
        cache.gc(max_bytes=0)
        time.sleep(0.001)


class TestConcurrentPublish:
    def test_two_processes_same_digest_atomic_publish(self, tmp_path):
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(3)
        stop = ctx.Event()
        results = ctx.Queue()
        writers = [
            ctx.Process(target=publisher, args=(root, barrier, wid, 150))
            for wid in range(2)
        ]
        reader = ctx.Process(target=poller, args=(root, barrier, stop, results))
        for process in writers + [reader]:
            process.start()
        for process in writers:
            process.join(timeout=60)
            assert process.exitcode == 0
        stop.set()
        reader.join(timeout=60)
        assert reader.exitcode == 0
        outcome = results.get(timeout=10)
        assert outcome["torn"] == 0, f"reader saw {outcome['torn']} torn documents"
        # The reader genuinely observed the contended window, and the
        # final document is one writer's complete last round.
        assert outcome["reads"] > 0
        cache = _cache(root)
        final = cache.get(cache.key_for_doc(SPEC))
        assert final["writer"] in (0, 1)
        assert final["round"] == 149

    def test_no_temp_litter_after_contention(self, tmp_path):
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(target=publisher, args=(root, barrier, wid, 50))
            for wid in range(2)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=60)
            assert process.exitcode == 0
        leftovers = []
        for dirpath, _, filenames in os.walk(root):
            leftovers.extend(n for n in filenames if n.endswith(".tmp"))
        assert leftovers == []

    def test_gc_racing_writers_is_safe(self, tmp_path):
        # Eviction deleting entries out from under a publisher must
        # never corrupt the cache or crash either side; readers just
        # take a miss and recompute.
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        stop = ctx.Event()
        writer = ctx.Process(target=publisher, args=(root, barrier, 0, 150))
        collector = ctx.Process(target=gc_worker, args=(root, barrier, stop))
        writer.start()
        collector.start()
        writer.join(timeout=60)
        stop.set()
        collector.join(timeout=60)
        assert writer.exitcode == 0
        assert collector.exitcode == 0
        # Whatever survived the race is parseable.
        cache = _cache(root)
        for entry in cache.entries():
            if entry.kind == "json":
                with open(entry.path) as handle:
                    json.load(handle)


class TestInProcessRace:
    def test_interleaved_put_get_many_threads(self, tmp_path):
        import threading

        cache = _cache(str(tmp_path / "cache"))
        key = cache.key_for_doc(SPEC)
        errors = []

        def hammer(thread_id):
            try:
                for i in range(200):
                    cache.put(key, {"writer": thread_id, "round": i, "pad": "x" * 512})
                    doc = cache.get(key)
                    assert doc is not None and len(doc["pad"]) == 512
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
