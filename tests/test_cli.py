"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_mesh, _parse_params, main


class TestParamParsing:
    def test_types_inferred(self):
        params = _parse_params(["n=256", "density=0.2", "mode=fast"])
        assert params == {"n": 256, "density": 0.2, "mode": "fast"}

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            _parse_params(["n256"])


class TestMeshParsing:
    def test_simple(self):
        config = _parse_mesh("4x2")
        assert (config.width, config.height, config.topology) == (4, 2, "mesh")

    def test_with_topology(self):
        config = _parse_mesh("4x2:torus")
        assert config.topology == "torus"
        assert config.virtual_channels == 2

    def test_malformed(self):
        with pytest.raises(ValueError):
            _parse_mesh("4by2")

    def test_nonpositive_dimensions_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            _parse_mesh("0x4")
        with pytest.raises(ValueError, match="positive"):
            _parse_mesh("4x0")
        with pytest.raises(ValueError, match="positive"):
            _parse_mesh("-2x4")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            _parse_mesh("4x2:ring")
        with pytest.raises(ValueError, match="unknown topology"):
            _parse_mesh("4x2:taurus")

    def test_bad_mesh_reported_as_cli_error(self, capsys):
        code = main(["characterize", "1d-fft", "--param", "n=64", "--mesh", "0x4"])
        assert code == 2
        assert "positive" in capsys.readouterr().err


class TestCommands:
    def test_apps_lists_suite(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("1d-fft", "is", "cholesky", "nbody", "maxflow", "3d-fft", "mg"):
            assert name in out

    def test_characterize_shared_memory(self, capsys, tmp_path):
        log_path = str(tmp_path / "log.csv")
        code = main(
            ["characterize", "1d-fft", "--param", "n=64", "--log-csv", log_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "=== 1d-fft (dynamic, 8 nodes) ===" in out
        assert "spatial:" in out
        with open(log_path) as handle:
            assert "msg_id" in handle.readline()

    def test_characterize_message_passing(self, capsys):
        assert main(["characterize", "3d-fft", "--param", "n=8"]) == 0
        out = capsys.readouterr().out
        assert "static" in out

    def test_characterize_on_torus(self, capsys):
        assert main(
            ["characterize", "1d-fft", "--param", "n=64", "--mesh", "4x2:torus"]
        ) == 0

    def test_validate(self, capsys):
        code = main(
            ["validate", "1d-fft", "--param", "n=64", "--messages", "60", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert "acceptable:" in out
        assert code in (0, 1)

    def test_sp2_model(self, capsys):
        assert main(["sp2-model", "0", "1024"]) == 0
        out = capsys.readouterr().out
        assert "73.42" in out

    def test_unknown_app_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["characterize", "quicksort"])

    def test_bad_param_reports_error(self, capsys):
        code = main(["characterize", "1d-fft", "--param", "oops"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_app_param_reports_error(self, capsys):
        # Valid syntax, invalid value for the app (not power of two).
        code = main(["characterize", "1d-fft", "--param", "n=100"])
        assert code == 2


class TestObservabilityCommands:
    def test_metrics_flag_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "m.json")
        assert main(
            ["characterize", "1d-fft", "--param", "n=64", "--metrics", path]
        ) == 0
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["app"] == "1d-fft"
        metrics = doc["metrics"]
        assert metrics["sim.event_queue_depth"]["samples"] > 0
        assert any(k.startswith("net.channel[") for k in metrics)
        assert any(k.startswith("coherence.msg.") for k in metrics)
        # The metrics subcommand summarises what characterize wrote.
        capsys.readouterr()
        assert main(["metrics", path]) == 0
        out = capsys.readouterr().out
        assert "net.injected" in out

    def test_metrics_flag_static_strategy(self, tmp_path):
        path = str(tmp_path / "m.json")
        assert main(
            ["characterize", "3d-fft", "--param", "n=8", "--metrics", path]
        ) == 0
        with open(path) as handle:
            metrics = json.load(handle)["metrics"]
        assert metrics["mp.messages"]["value"] > 0
        assert metrics["replay.stall"]["count"] > 0

    def test_timeline_flag_writes_chrome_trace(self, tmp_path):
        path = str(tmp_path / "t.json")
        assert main(
            ["characterize", "1d-fft", "--param", "n=64", "--timeline", path]
        ) == 0
        with open(path) as handle:
            doc = json.load(handle)
        events = doc["traceEvents"]
        assert events
        assert all({"ph", "pid", "name"} <= set(e) for e in events)
        assert any(e["ph"] == "X" for e in events)

    def test_report_flag(self, tmp_path):
        path = str(tmp_path / "report.json")
        assert main(
            ["characterize", "1d-fft", "--param", "n=64", "--report", path]
        ) == 0
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["schema"] == 1
        assert doc["strategy"] == "dynamic"
        assert doc["messages"] > 0
        assert doc["wall_seconds"] > 0
        assert "net.injected" in doc["metrics"]

    def test_metrics_subcommand_rejects_bad_file(self, capsys, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"not": "metrics"}, handle)
        assert main(["metrics", path]) == 2
        assert "error:" in capsys.readouterr().err
