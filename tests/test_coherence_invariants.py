"""Property-based coherence-protocol invariant checking.

Randomized thread programs (mixes of loads, stores, compute and
barriers over a small shared region) run to completion, after which the
protocol's global invariants must hold:

* **SWMR** -- a block in MODIFIED state anywhere has exactly one copy
  system-wide;
* **cache/directory agreement** -- every cached copy is accounted for
  by its home directory entry (no stale sharers besides the silent-
  eviction allowance, never a missing one);
* **functional correctness** -- the final memory image equals a serial
  oracle's, given the programs are made race-free by construction
  (each word is written by a single owner thread).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence import CacheState, CoherenceConfig, DirectoryState
from repro.exec_driven import ExecutionDrivenSimulation
from repro.mesh import MeshConfig


def check_global_invariants(sim: ExecutionDrivenSimulation) -> None:
    """Assert SWMR and cache/directory agreement over every block."""
    machine = sim.machine
    num = machine.num_processors
    blocks = set()
    for directory in machine.directories:
        blocks.update(directory._entries.keys())
    for cache in machine.caches:
        for bucket in cache._sets.values():
            blocks.update(bucket.keys())

    for block in blocks:
        home = machine.block_map.home_of(block)
        entry = machine.directories[home].entry(block)
        holders = {
            pid: machine.caches[pid].peek(block)
            for pid in range(num)
            if machine.caches[pid].peek(block) is not None
        }
        modified = [pid for pid, state in holders.items() if state is CacheState.MODIFIED]

        # SWMR: at most one modified copy, and then no other copies.
        assert len(modified) <= 1, f"block {block}: two writers {modified}"
        if modified:
            assert len(holders) == 1, (
                f"block {block}: modified at {modified[0]} but copies at {holders}"
            )
            assert entry.state is DirectoryState.EXCLUSIVE
            assert entry.owner == modified[0]

        # Directory agreement: every real copy is tracked (silent
        # S-eviction updates the directory in this implementation, so
        # tracking is exact both ways for SHARED too).
        if entry.state is DirectoryState.EXCLUSIVE:
            owner_state = machine.caches[entry.owner].peek(block)
            # The owner may have evicted (writeback in flight at end).
            assert owner_state in (CacheState.MODIFIED, None)
        elif entry.state is DirectoryState.SHARED:
            for sharer in entry.sharers:
                assert machine.caches[sharer].peek(block) is CacheState.SHARED, (
                    f"block {block}: directory lists p{sharer} but cache disagrees"
                )
        for pid, state in holders.items():
            if state is CacheState.SHARED:
                assert pid in entry.sharers, (
                    f"block {block}: p{pid} holds S copy unknown to the directory"
                )


def random_program(rng: np.random.Generator, words: int, steps: int):
    """A race-free random program: pid p writes only words with
    ``w % 8 == p`` but reads anywhere."""

    script = [
        (
            rng.choice(["load", "store", "compute"], p=[0.45, 0.45, 0.10]),
            int(rng.integers(0, words)),
            float(rng.integers(1, 50)),
        )
        for _ in range(steps)
    ]

    def body(ctx, data, barrier, oracle):
        my_offset = ctx.pid
        for op, word, amount in script:
            if op == "compute":
                ctx.compute(amount)
            elif op == "load":
                yield from ctx.load(data, word)
            else:
                target = (word - word % 8) + my_offset  # owned word
                if target < data.length:
                    value = (ctx.pid, word, amount)
                    yield from ctx.store(data, target, value)
                    oracle[target] = value
        yield from ctx.barrier(barrier)

    return body


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    cache_lines=st.sampled_from([4, 16, 64]),
    protocol=st.sampled_from(["invalidate", "update"]),
)
def test_invariants_hold_after_random_programs(seed, cache_lines, protocol):
    rng = np.random.default_rng(seed)
    words = 8 * 12  # 12 blocks over 8 nodes
    sim = ExecutionDrivenSimulation(
        mesh_config=MeshConfig(width=4, height=2),
        coherence_config=CoherenceConfig(
            cache_lines=cache_lines, associativity=2, protocol=protocol
        ),
    )
    data = sim.array("data", words)
    barrier = sim.barrier()
    oracles = [dict() for _ in range(8)]
    programs = [random_program(rng, words, steps=40) for _ in range(8)]

    def worker(ctx):
        yield from programs[ctx.pid](ctx, data, barrier, oracles[ctx.pid])

    sim.run(worker)
    if protocol == "invalidate":
        check_global_invariants(sim)

    # Functional oracle: each word's last writer is unique (ownership
    # by construction), so the union of per-thread oracles is exact.
    for oracle in oracles:
        for word, value in oracle.items():
            assert data.peek(word) == value


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_invariants_hold_under_release_consistency(seed):
    rng = np.random.default_rng(seed)
    words = 8 * 8
    sim = ExecutionDrivenSimulation(
        coherence_config=CoherenceConfig(consistency="release", cache_lines=16,
                                         associativity=2),
    )
    data = sim.array("data", words)
    barrier = sim.barrier()
    oracles = [dict() for _ in range(8)]
    programs = [random_program(rng, words, steps=30) for _ in range(8)]

    def worker(ctx):
        yield from programs[ctx.pid](ctx, data, barrier, oracles[ctx.pid])
        # The barrier fenced all buffered stores.
        assert ctx.machine.outstanding_stores(ctx.pid) == 0

    sim.run(worker)
    check_global_invariants(sim)
    for oracle in oracles:
        for word, value in oracle.items():
            assert data.peek(word) == value
