"""Integration tests for the CC-NUMA protocol engine and thread API."""

import pytest

from repro.coherence import CacheState, CoherenceConfig, DirectoryState, MessageKind
from repro.exec_driven import ExecutionDrivenSimulation
from repro.mesh import MeshConfig


def make_sim(**coh_kwargs):
    return ExecutionDrivenSimulation(
        mesh_config=MeshConfig(width=4, height=2),
        coherence_config=CoherenceConfig(**coh_kwargs),
    )


def kinds_in_log(sim):
    return sim.log.kinds()


class TestReadPath:
    def test_remote_read_miss_generates_request_and_reply(self):
        sim = make_sim()
        data = sim.array("data", 8)
        data.poke(0, 42)
        results = []

        def worker(ctx):
            if ctx.pid == 1:
                value = yield from ctx.load(data, 0)
                results.append(value)
            return
            yield  # pragma: no cover

        sim.run(worker)
        assert results == [42]
        kinds = kinds_in_log(sim)
        # Block 0 is homed at node 0; requester is node 1 -> remote.
        assert kinds.get(MessageKind.READ_REQ.value) == 1
        assert kinds.get(MessageKind.DATA_REPLY.value) == 1

    def test_local_read_miss_stays_off_network(self):
        sim = make_sim()
        data = sim.array("data", 8)
        data.poke(0, 7)
        results = []

        def worker(ctx):
            if ctx.pid == 0:  # block 0 homed at node 0
                value = yield from ctx.load(data, 0)
                results.append(value)
            return
            yield  # pragma: no cover

        sim.run(worker)
        assert results == [7]
        assert len(sim.log) == 0
        assert sim.machine.local_messages == 2  # local req + local reply

    def test_second_read_hits_in_cache(self):
        sim = make_sim()
        data = sim.array("data", 8)
        data.poke(0, 1)

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.load(data, 0)
                yield from ctx.load(data, 0)

        sim.run(worker)
        assert sim.machine.read_misses == 1
        assert kinds_in_log(sim).get(MessageKind.READ_REQ.value) == 1

    def test_read_of_modified_block_fetches_from_owner(self):
        sim = make_sim()
        data = sim.array("data", 8)
        seen = []

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.store(data, 0, 99)
            yield from ctx.barrier(barrier)
            if ctx.pid == 2:
                value = yield from ctx.load(data, 0)
                seen.append(value)

        barrier = sim.barrier()
        sim.run(worker)
        assert seen == [99]
        kinds = kinds_in_log(sim)
        assert kinds.get(MessageKind.FETCH.value, 0) >= 1
        assert kinds.get(MessageKind.FETCH_REPLY.value, 0) >= 1
        # Previous owner keeps a SHARED copy after the recall.
        block = sim.machine.block_map.block_of(data.address(0))
        assert sim.machine.caches[1].peek(block) is CacheState.SHARED


class TestWritePath:
    def test_write_invalidates_sharers(self):
        sim = make_sim()
        data = sim.array("data", 8)
        data.poke(0, 0)
        b1 = sim.barrier()
        b2 = sim.barrier()

        def worker(ctx):
            # Everyone reads the block -> all become sharers.
            yield from ctx.load(data, 0)
            yield from ctx.barrier(b1)
            # One processor writes -> all other copies invalidated.
            if ctx.pid == 3:
                yield from ctx.store(data, 0, 5)
            yield from ctx.barrier(b2)

        sim.run(worker)
        kinds = kinds_in_log(sim)
        assert kinds.get(MessageKind.INVALIDATE.value, 0) >= 6
        assert kinds.get(MessageKind.INV_ACK.value, 0) >= 6
        block = sim.machine.block_map.block_of(data.address(0))
        for pid in range(8):
            state = sim.machine.caches[pid].peek(block)
            if pid == 3:
                assert state is CacheState.MODIFIED
            else:
                assert state is None

    def test_upgrade_from_shared(self):
        sim = make_sim()
        data = sim.array("data", 8)
        data.poke(0, 0)

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.load(data, 0)   # acquire S
                yield from ctx.store(data, 0, 1)  # upgrade S -> M

        sim.run(worker)
        assert sim.machine.upgrades == 1
        kinds = kinds_in_log(sim)
        assert kinds.get(MessageKind.UPGRADE_REQ.value) == 1
        assert kinds.get(MessageKind.UPGRADE_ACK.value) == 1

    def test_write_write_migration(self):
        sim = make_sim()
        data = sim.array("data", 8)
        barrier = sim.barrier()

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.store(data, 0, 10)
            yield from ctx.barrier(barrier)
            if ctx.pid == 2:
                yield from ctx.store(data, 0, 20)

        sim.run(worker)
        block = sim.machine.block_map.block_of(data.address(0))
        home = sim.machine.block_map.home_of(block)
        entry = sim.machine.directories[home].entry(block)
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 2
        assert data.peek(0) == 20

    def test_store_value_visible_to_later_reader(self):
        sim = make_sim()
        data = sim.array("data", 8)
        barrier = sim.barrier()
        seen = []

        def worker(ctx):
            if ctx.pid == 4:
                yield from ctx.store(data, 3, "hello")
            yield from ctx.barrier(barrier)
            if ctx.pid == 6:
                value = yield from ctx.load(data, 3)
                seen.append(value)

        sim.run(worker)
        assert seen == ["hello"]


class TestEvictions:
    def test_dirty_eviction_writes_back(self):
        # Tiny cache: 2 lines, direct-ish; writes to many blocks evict.
        sim = make_sim(cache_lines=2, associativity=1)
        data = sim.array("data", 8 * 16)  # 16 blocks

        def worker(ctx):
            if ctx.pid == 1:
                for i in range(0, 8 * 16, 8):
                    yield from ctx.store(data, i, i)

        sim.run(worker)
        assert sim.machine.writebacks > 0
        assert kinds_in_log(sim).get(MessageKind.WRITEBACK.value, 0) > 0

    def test_functional_values_survive_eviction(self):
        sim = make_sim(cache_lines=2, associativity=1)
        data = sim.array("data", 8 * 16)

        def worker(ctx):
            if ctx.pid == 1:
                for i in range(0, 8 * 16, 8):
                    yield from ctx.store(data, i, i * 2)
                total = 0
                for i in range(0, 8 * 16, 8):
                    value = yield from ctx.load(data, i)
                    total += value
                results.append(total)

        results = []
        sim.run(worker)
        assert results == [sum(i * 2 for i in range(0, 8 * 16, 8))]


class TestCycleAccounting:
    def test_compute_delays_injection(self):
        sim = make_sim()
        data = sim.array("data", 8)

        def worker(ctx):
            if ctx.pid == 1:
                ctx.compute(1000)
                yield from ctx.load(data, 0)

        sim.run(worker)
        assert len(sim.log) == 2
        first = min(sim.log.records, key=lambda r: r.inject_time)
        assert first.inject_time >= 1000.0

    def test_hits_accumulate_without_events(self):
        sim = make_sim()
        data = sim.array("data", 8)

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.load(data, 0)
                for _ in range(100):
                    yield from ctx.load(data, 0)

        sim.run(worker)
        # Only the initial miss reached the network.
        assert kinds_in_log(sim).get(MessageKind.READ_REQ.value) == 1
        assert sim.machine.caches[1].hits == 100


class TestStats:
    def test_counters_add_up(self):
        sim = make_sim()
        data = sim.array("data", 64)

        def worker(ctx):
            yield from ctx.store(data, ctx.pid * 8, ctx.pid)
            yield from ctx.load(data, ctx.pid * 8)

        sim.run(worker)
        stats = sim.machine_stats()
        assert stats["loads"] == 8
        assert stats["stores"] == 8
        assert stats["write_misses"] == 8
        assert stats["read_misses"] == 0  # loads hit own M line
        assert 0 <= stats["miss_rate"] <= 1

    def test_run_twice_rejected(self):
        sim = make_sim()

        def worker(ctx):
            return
            yield  # pragma: no cover

        sim.run(worker)
        with pytest.raises(RuntimeError):
            sim.run(worker)
