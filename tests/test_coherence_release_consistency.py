"""Tests for the release-consistency (write-buffer) variant."""

import pytest

from repro.coherence import CoherenceConfig
from repro.exec_driven import ExecutionDrivenSimulation
from repro.mesh import MeshConfig


def make_sim(**coh):
    return ExecutionDrivenSimulation(
        mesh_config=MeshConfig(width=4, height=2),
        coherence_config=CoherenceConfig(consistency="release", **coh),
    )


class TestReleaseConsistency:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoherenceConfig(consistency="weak")

    def test_store_does_not_block_thread(self):
        sim = make_sim()
        data = sim.array("data", 8)
        progress = []

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.store(data, 0, 42)  # remote block, buffered
                progress.append(ctx.now)

        sim.run(worker)
        # The thread retired the store long before the transaction's
        # round trip could have completed.
        zero_load = sim.mesh_config.zero_load_latency(1, 8)
        assert progress[0] < zero_load
        assert sim.machine.buffered_stores == 1

    def test_fence_drains_before_sync(self):
        sim = make_sim()
        data = sim.array("data", 8)
        barrier = sim.barrier()
        seen = []

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.store(data, 0, "flag")
            yield from ctx.barrier(barrier)
            if ctx.pid == 2:
                value = yield from ctx.load(data, 0)
                seen.append(value)
                seen.append(ctx.machine.outstanding_stores(1))

        sim.run(worker)
        assert seen == ["flag", 0]

    def test_store_to_load_forwarding(self):
        sim = make_sim()
        data = sim.array("data", 8)
        seen = []

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.store(data, 0, 7)
                value = yield from ctx.load(data, 0)  # waits for own store
                seen.append(value)

        sim.run(worker)
        assert seen == [7]
        # The load joined the buffered transaction instead of issuing
        # its own read miss.
        assert sim.machine.read_misses == 0

    def test_consecutive_stores_same_block_single_transaction(self):
        sim = make_sim()
        data = sim.array("data", 8)

        def worker(ctx):
            if ctx.pid == 1:
                for i in range(5):
                    yield from ctx.store(data, i, i)  # same block

        sim.run(worker)
        # First store buffers a transaction; once MODIFIED, the rest hit.
        assert sim.machine.write_misses == 1

    def test_sequential_mode_has_empty_buffer(self):
        sim = ExecutionDrivenSimulation(
            coherence_config=CoherenceConfig(consistency="sequential")
        )
        data = sim.array("data", 8)

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.store(data, 0, 1)
                assert ctx.machine.outstanding_stores(1) == 0

        sim.run(worker)
        assert sim.machine.buffered_stores == 0

    def test_release_with_update_protocol(self):
        sim = make_sim(protocol="update")
        data = sim.array("data", 8)
        barrier = sim.barrier()
        seen = []

        def worker(ctx):
            yield from ctx.load(data, 0)
            yield from ctx.barrier(barrier)
            if ctx.pid == 3:
                yield from ctx.store(data, 0, 11)
            yield from ctx.barrier(barrier)
            if ctx.pid == 5:
                seen.append((yield from ctx.load(data, 0)))

        sim.run(worker)
        assert seen == [11]
        assert sim.machine.updates_sent > 0

    @pytest.mark.parametrize("app_name,params", [
        ("1d-fft", {"n": 64}),
        ("is", {"n": 256, "buckets": 16}),
        ("nbody", {"n": 16, "steps": 2}),
    ])
    def test_apps_verify_under_release(self, app_name, params):
        from repro.apps import create_app

        app = create_app(app_name, **params)
        sim = app.run(coherence_config=CoherenceConfig(consistency="release"))
        assert sim.machine.buffered_stores > 0

    def test_release_speeds_up_write_heavy_work(self):
        def run(consistency):
            sim = ExecutionDrivenSimulation(
                coherence_config=CoherenceConfig(consistency=consistency)
            )
            data = sim.array("data", 8 * 32)
            barrier = sim.barrier()

            def worker(ctx):
                # Scattered remote writes with compute between them.
                for i in ctx.pid * 4, ctx.pid * 4 + 1, ctx.pid * 4 + 2:
                    yield from ctx.store(data, (i * 8 + 8 * ctx.pid) % (8 * 32), i)
                    ctx.compute(50)
                yield from ctx.barrier(barrier)

            sim.run(worker)
            return sim.simulator.now

        assert run("release") < run("sequential")
