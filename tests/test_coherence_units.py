"""Unit tests for cache, directory, block map and protocol vocabulary."""

import pytest

from repro.coherence import (
    BlockMap,
    Cache,
    CacheState,
    CoherenceConfig,
    Directory,
    DirectoryState,
    MessageKind,
)
from repro.coherence.protocol import CONTROL_KINDS, DATA_KINDS, payload_bytes


class TestBlockMap:
    def test_block_of(self):
        bm = BlockMap(block_words=8, num_nodes=4)
        assert bm.block_of(0) == 0
        assert bm.block_of(7) == 0
        assert bm.block_of(8) == 1

    def test_home_interleaving(self):
        bm = BlockMap(block_words=8, num_nodes=4)
        assert [bm.home_of(b) for b in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_home_of_address(self):
        bm = BlockMap(block_words=4, num_nodes=2)
        assert bm.home_of_address(0) == 0
        assert bm.home_of_address(4) == 1
        assert bm.home_of_address(8) == 0

    def test_block_range(self):
        bm = BlockMap(block_words=8, num_nodes=4)
        assert bm.block_range(2) == (16, 24)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockMap(0, 4)
        with pytest.raises(ValueError):
            BlockMap(8, 0)
        bm = BlockMap(8, 4)
        with pytest.raises(ValueError):
            bm.block_of(-1)
        with pytest.raises(ValueError):
            bm.home_of(-1)


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(lines=8, associativity=2)
        assert cache.lookup(5) is None
        cache.insert(5, CacheState.SHARED)
        assert cache.lookup(5) is CacheState.SHARED
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_within_set(self):
        cache = Cache(lines=4, associativity=2)  # 2 sets
        # Blocks 0, 2, 4 all map to set 0.
        cache.insert(0, CacheState.SHARED)
        cache.insert(2, CacheState.SHARED)
        cache.lookup(0)  # touch 0 so 2 is LRU
        victim = cache.insert(4, CacheState.SHARED)
        assert victim is not None and victim.block == 2
        assert cache.peek(0) is CacheState.SHARED
        assert cache.peek(2) is None

    def test_insert_existing_updates_state(self):
        cache = Cache(lines=4, associativity=2)
        cache.insert(1, CacheState.SHARED)
        victim = cache.insert(1, CacheState.MODIFIED)
        assert victim is None
        assert cache.peek(1) is CacheState.MODIFIED
        assert cache.occupancy == 1

    def test_invalidate(self):
        cache = Cache(lines=4, associativity=2)
        cache.insert(3, CacheState.MODIFIED)
        assert cache.invalidate(3) is CacheState.MODIFIED
        assert cache.invalidate(3) is None
        assert cache.invalidations_received == 1

    def test_downgrade(self):
        cache = Cache(lines=4, associativity=2)
        cache.insert(3, CacheState.MODIFIED)
        assert cache.downgrade(3)
        assert cache.peek(3) is CacheState.SHARED
        assert not cache.downgrade(99)

    def test_set_state_missing_raises(self):
        cache = Cache(lines=4, associativity=2)
        with pytest.raises(KeyError):
            cache.set_state(9, CacheState.SHARED)

    def test_hit_rate(self):
        cache = Cache(lines=4, associativity=2)
        cache.lookup(0)
        cache.insert(0, CacheState.SHARED)
        cache.lookup(0)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(lines=0, associativity=1)
        with pytest.raises(ValueError):
            Cache(lines=4, associativity=8)
        with pytest.raises(ValueError):
            Cache(lines=6, associativity=4)


class TestDirectory:
    def test_fresh_entry_uncached(self):
        d = Directory(0)
        ent = d.entry(7)
        assert ent.state is DirectoryState.UNCACHED
        ent.validate()

    def test_reader_transitions_to_shared(self):
        d = Directory(0)
        d.record_reader(1, reader=3)
        d.record_reader(1, reader=5)
        ent = d.entry(1)
        assert ent.state is DirectoryState.SHARED
        assert ent.sharers == {3, 5}
        ent.validate()

    def test_reader_on_exclusive_rejected(self):
        d = Directory(0)
        d.record_owner(1, owner=2)
        with pytest.raises(ValueError):
            d.record_reader(1, reader=3)

    def test_owner_requires_no_sharers(self):
        d = Directory(0)
        d.record_reader(1, reader=3)
        with pytest.raises(ValueError):
            d.record_owner(1, owner=4)

    def test_clear_sharers(self):
        d = Directory(0)
        d.record_reader(1, reader=3)
        d.record_reader(1, reader=4)
        assert d.clear_sharers(1) == {3, 4}
        assert d.entry(1).state is DirectoryState.UNCACHED

    def test_clear_owner(self):
        d = Directory(0)
        d.record_owner(1, owner=6)
        assert d.clear_owner(1) == 6
        assert d.entry(1).state is DirectoryState.UNCACHED

    def test_drop_sharer(self):
        d = Directory(0)
        d.record_reader(1, reader=3)
        d.record_reader(1, reader=4)
        d.drop_sharer(1, 3)
        assert d.entry(1).sharers == {4}
        d.drop_sharer(1, 4)
        assert d.entry(1).state is DirectoryState.UNCACHED

    def test_tracked_blocks(self):
        d = Directory(0)
        d.entry(1)
        d.entry(2)
        assert d.tracked_blocks() == 2


class TestProtocolVocabulary:
    def test_kind_partition(self):
        assert DATA_KINDS | CONTROL_KINDS == frozenset(MessageKind)
        assert not (DATA_KINDS & CONTROL_KINDS)

    def test_payload_bytes(self):
        assert payload_bytes(MessageKind.DATA_REPLY, 8, 32) == 32
        assert payload_bytes(MessageKind.READ_REQ, 8, 32) == 8
        assert payload_bytes(MessageKind.BARRIER_ARRIVE, 8, 32) == 8


class TestCoherenceConfig:
    def test_derived_fields(self):
        cfg = CoherenceConfig(block_words=8, word_bytes=4)
        assert cfg.block_bytes == 32
        assert cfg.cache_sets == cfg.cache_lines // cfg.associativity

    def test_validation(self):
        with pytest.raises(ValueError):
            CoherenceConfig(block_words=0)
        with pytest.raises(ValueError):
            CoherenceConfig(associativity=0)
        with pytest.raises(ValueError):
            CoherenceConfig(cache_lines=10, associativity=4)
        with pytest.raises(ValueError):
            CoherenceConfig(memory_time=-1)
