"""Tests for the write-update protocol variant."""

import pytest

from repro.coherence import CacheState, CoherenceConfig, MessageKind
from repro.exec_driven import ExecutionDrivenSimulation
from repro.mesh import MeshConfig


def make_sim(**coh):
    return ExecutionDrivenSimulation(
        mesh_config=MeshConfig(width=4, height=2),
        coherence_config=CoherenceConfig(protocol="update", **coh),
    )


class TestUpdateProtocol:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoherenceConfig(protocol="mesi")

    def test_store_updates_instead_of_invalidating(self):
        sim = make_sim()
        data = sim.array("data", 8)
        data.poke(0, 0)
        b1 = sim.barrier()
        b2 = sim.barrier()

        def worker(ctx):
            yield from ctx.load(data, 0)          # everyone shares
            yield from ctx.barrier(b1)
            if ctx.pid == 3:
                yield from ctx.store(data, 0, 5)  # update, not invalidate
            yield from ctx.barrier(b2)

        sim.run(worker)
        kinds = sim.log.kinds()
        assert kinds.get(MessageKind.UPDATE.value, 0) >= 6
        assert MessageKind.INVALIDATE.value not in kinds
        # Sharers keep their copies.
        block = sim.machine.block_map.block_of(data.address(0))
        for pid in range(8):
            assert sim.machine.caches[pid].peek(block) is CacheState.SHARED

    def test_values_propagate_through_updates(self):
        sim = make_sim()
        data = sim.array("data", 8)
        data.poke(0, 0)
        barrier = sim.barrier()
        seen = []

        def worker(ctx):
            yield from ctx.load(data, 0)
            yield from ctx.barrier(barrier)
            if ctx.pid == 2:
                yield from ctx.store(data, 0, 99)
            yield from ctx.barrier(barrier)
            if ctx.pid == 6:
                value = yield from ctx.load(data, 0)
                seen.append(value)

        sim.run(worker)
        assert seen == [99]
        # Reader's copy was updated in place: its second load hit.
        assert sim.machine.read_misses == 8  # only the initial loads missed

    def test_repeated_stores_keep_updating(self):
        sim = make_sim()
        data = sim.array("data", 8)
        barrier = sim.barrier()

        def worker(ctx):
            yield from ctx.load(data, 0)
            yield from ctx.barrier(barrier)
            if ctx.pid == 1:
                for i in range(5):
                    yield from ctx.store(data, 0, i)

        sim.run(worker)
        # 5 stores x 7 sharers = 35 updates.
        assert sim.machine.updates_sent == 35

    def test_no_writebacks_under_update(self):
        sim = make_sim(cache_lines=2, associativity=1)
        data = sim.array("data", 8 * 16)

        def worker(ctx):
            if ctx.pid == 1:
                for i in range(0, 8 * 16, 8):
                    yield from ctx.store(data, i, i)

        sim.run(worker)
        assert sim.machine.writebacks == 0
        assert sim.log.kinds().get(MessageKind.WRITEBACK.value, 0) == 0

    def test_apps_verify_under_update_protocol(self):
        from repro.apps.shared.fft1d import FFT1DApp

        app = FFT1DApp(n=64)
        sim = app.run(coherence_config=CoherenceConfig(protocol="update"))
        assert sim.machine.updates_sent > 0

    def test_update_generates_more_smaller_messages_than_invalidate(self):
        from repro.apps.shared.is_sort import IntegerSortApp

        inv_sim = IntegerSortApp(n=256, buckets=16).run(
            coherence_config=CoherenceConfig(protocol="invalidate")
        )
        upd_sim = IntegerSortApp(n=256, buckets=16).run(
            coherence_config=CoherenceConfig(protocol="update")
        )
        assert len(upd_sim.log) > len(inv_sim.log)
        # Update traffic is control-dominated: mean length drops.
        inv_mean = inv_sim.log.message_lengths().mean()
        upd_mean = upd_sim.log.message_lengths().mean()
        assert upd_mean < inv_mean
