"""Tests for the analytical wormhole latency model."""

import numpy as np
import pytest

from repro import characterize_shared_memory, create_app
from repro.core import WormholeLatencyModel
from repro.mesh import MeshConfig


@pytest.fixture(scope="module")
def fft_run():
    return characterize_shared_memory(create_app("1d-fft", n=128))


@pytest.fixture(scope="module")
def model(fft_run):
    return WormholeLatencyModel(fft_run.characterization)


class TestModelBasics:
    def test_mean_flits_from_modes(self, model):
        modes = model.characterization.volume.length_fractions
        expected = sum(
            frac * model.config.flits_for(size) for size, frac in modes.items()
        )
        assert model.mean_message_flits() == pytest.approx(expected)

    def test_service_time_positive(self, model):
        assert model.channel_service_time() > 0

    def test_latency_monotone_in_load(self, model):
        latencies = [model.predict(scale).mean_latency for scale in (0.5, 1, 2, 4, 8)]
        assert latencies == sorted(latencies)
        assert all(np.isfinite(latencies))

    def test_contention_grows_superlinearly_near_saturation(self, model):
        low = model.predict(1.0).mean_contention
        high = model.predict(8.0).mean_contention
        assert high > 4 * low

    def test_zero_load_floor(self, model, fft_run):
        # At vanishing load the model approaches the zero-load latency,
        # which lower-bounds the simulator's observed latency.
        estimate = model.predict(1e-6)
        assert estimate.mean_contention == pytest.approx(0.0, abs=1e-3)
        assert estimate.mean_latency <= fft_run.log.mean_latency() + 1.0

    def test_saturation_scale_linear_in_utilization(self, model):
        scale = model.saturation_scale()
        assert scale > 1.0  # the characterized workload is below saturation
        just_below = model.predict(scale * 0.99)
        just_above = model.predict(scale * 1.01)
        assert not just_below.saturated
        assert just_above.saturated
        assert just_above.mean_latency == float("inf") or just_above.saturated

    def test_utilization_scales_linearly(self, model):
        one = model.predict(1.0).max_channel_utilization
        two = model.predict(2.0).max_channel_utilization
        assert two == pytest.approx(2 * one, rel=1e-9)


class TestModelAgainstSimulation:
    def test_tracks_simulation_within_factor_two(self, fft_run, model):
        from repro.core import SyntheticTrafficGenerator

        for scale in (1.0, 4.0):
            estimate = model.predict(scale)
            log = SyntheticTrafficGenerator(
                fft_run.characterization, seed=11, rate_scale=scale
            ).generate(messages_per_source=120)
            assert estimate.mean_latency == pytest.approx(
                log.mean_latency(), rel=1.0
            ), f"model diverges at scale {scale}"


class TestValidation:
    def test_mesh_mismatch_rejected(self, fft_run):
        with pytest.raises(ValueError):
            WormholeLatencyModel(
                fft_run.characterization, mesh_config=MeshConfig(width=4, height=4)
            )

    def test_bad_scale_rejected(self, model):
        with pytest.raises(ValueError):
            model.predict(0.0)

    def test_works_on_other_topologies(self, fft_run):
        for topology, vcs in (("torus", 2), ("hypercube", 1)):
            config = MeshConfig(
                width=4, height=2, topology=topology, virtual_channels=vcs
            )
            model = WormholeLatencyModel(fft_run.characterization, mesh_config=config)
            estimate = model.predict(1.0)
            assert np.isfinite(estimate.mean_latency)

    def test_hypercube_predicts_lower_latency_for_butterfly(self, fft_run):
        mesh_model = WormholeLatencyModel(fft_run.characterization)
        cube_model = WormholeLatencyModel(
            fft_run.characterization,
            mesh_config=MeshConfig(width=4, height=2, topology="hypercube"),
        )
        assert (
            cube_model.predict(1.0).mean_latency
            < mesh_model.predict(1.0).mean_latency
        )
