"""Tests for burst estimation and the phase-coupled generator."""

import numpy as np
import pytest

from repro.core import (
    BurstModel,
    PhaseCoupledTrafficGenerator,
    compare_logs,
    characterize_shared_memory,
    estimate_bursts,
)
from repro.apps.shared.fft1d import FFT1DApp
from repro.mesh import MeshConfig


def synthetic_bursty_series(bursts, burst_size, within, between, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    gaps = []
    for _ in range(bursts):
        gaps.extend(within + jitter * rng.random() for _ in range(burst_size - 1))
        gaps.append(between + jitter * rng.random())
    return np.array(gaps[:-1])  # last between-gap has no following message


class TestEstimateBursts:
    def test_recovers_synthetic_structure(self):
        series = synthetic_bursty_series(
            bursts=50, burst_size=10, within=1.0, between=100.0
        )
        model = estimate_bursts(series)
        assert model.burst_count == 50
        assert model.mean_burst_size == pytest.approx(10.0, rel=0.05)
        assert model.mean_within_gap == pytest.approx(1.0, rel=0.05)
        assert model.mean_between_gap == pytest.approx(100.0, rel=0.05)

    def test_custom_threshold(self):
        series = np.array([1.0, 1.0, 5.0, 1.0, 1.0])
        model = estimate_bursts(series, threshold=3.0)
        assert model.burst_count == 2
        assert model.mean_burst_size == pytest.approx(3.0)

    def test_uniform_series_single_burst_edgecase(self):
        series = np.full(10, 2.0)
        # All gaps equal the mean; none are strictly below it, so the
        # whole series is "between" gaps -> many singleton bursts.
        model = estimate_bursts(series)
        assert model.burst_count == series.size + 1 or model.burst_count >= 1

    def test_all_within_degenerate(self):
        series = np.array([1.0, 1.0, 1.0])
        model = estimate_bursts(series, threshold=10.0)
        assert model.burst_count == 1
        assert model.mean_burst_size == 4.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_bursts(np.array([1.0]))

    def test_describe(self):
        model = estimate_bursts(synthetic_bursty_series(5, 4, 1.0, 50.0))
        assert "bursts:" in model.describe()


class TestPhaseCoupledGenerator:
    @pytest.fixture(scope="class")
    def fft_run(self):
        return characterize_shared_memory(FFT1DApp(n=128))

    def test_generates_requested_messages(self, fft_run):
        generator = PhaseCoupledTrafficGenerator(
            fft_run.characterization, source_log=fft_run.log, seed=1
        )
        log = generator.generate(total_messages=300)
        assert len(log) == 300

    def test_requires_burst_source(self, fft_run):
        with pytest.raises(ValueError):
            PhaseCoupledTrafficGenerator(fft_run.characterization)

    def test_respects_spatial_model(self, fft_run):
        generator = PhaseCoupledTrafficGenerator(
            fft_run.characterization, source_log=fft_run.log, seed=2
        )
        log = generator.generate(total_messages=400)
        for src in log.sources():
            counts = log.destination_counts(src, 8)
            partners = {src ^ 1, src ^ 2, src ^ 4}
            assert sum(counts[d] for d in range(8) if d not in partners) == 0

    def test_recovers_more_contention_than_independent(self, fft_run):
        from repro.core import SyntheticTrafficGenerator

        independent = SyntheticTrafficGenerator(
            fft_run.characterization, seed=3
        ).generate(messages_per_source=100)
        coupled = PhaseCoupledTrafficGenerator(
            fft_run.characterization, source_log=fft_run.log, seed=3
        ).generate(total_messages=800)
        original = fft_run.log.mean_contention()
        gap_independent = abs(original - independent.mean_contention())
        gap_coupled = abs(original - coupled.mean_contention())
        assert gap_coupled < gap_independent

    def test_explicit_burst_model(self, fft_run):
        model = BurstModel(
            threshold=5.0,
            mean_within_gap=0.5,
            mean_between_gap=50.0,
            mean_burst_size=8.0,
            burst_count=10,
        )
        generator = PhaseCoupledTrafficGenerator(
            fft_run.characterization, burst_model=model, seed=4
        )
        log = generator.generate(total_messages=200)
        assert len(log) == 200

    def test_validation_params(self, fft_run):
        generator = PhaseCoupledTrafficGenerator(
            fft_run.characterization, source_log=fft_run.log
        )
        with pytest.raises(ValueError):
            generator.generate(total_messages=0)
        with pytest.raises(ValueError):
            PhaseCoupledTrafficGenerator(
                fft_run.characterization, source_log=fft_run.log, rate_scale=0
            )
        with pytest.raises(ValueError):
            PhaseCoupledTrafficGenerator(
                fft_run.characterization,
                source_log=fft_run.log,
                mesh_config=MeshConfig(width=4, height=4),
            )
