"""Tests for the ASCII figure rendering."""

import numpy as np
import pytest

from repro.core.charts import bar_chart, histogram_chart, spatial_chart


class TestBarChart:
    def test_scales_to_width(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        chart = bar_chart(["a"], [1.0], title="hello")
        assert chart.splitlines()[0] == "hello"

    def test_zero_values(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestSpatialChart:
    def test_renders_all_destinations(self):
        fractions = np.array([0.0, 0.5, 0.25, 0.25])
        chart = spatial_chart(fractions, src=0)
        assert "p0" in chart and "p3" in chart
        assert "spatial distribution of p0" in chart


class TestHistogramChart:
    def test_fitted_marker_present(self):
        centers = np.array([1.0, 2.0, 3.0])
        empirical = np.array([0.5, 0.3, 0.1])
        fitted = np.array([0.45, 0.32, 0.12])
        chart = histogram_chart(centers, empirical, fitted)
        assert "*" in chart
        assert "fitted" in chart

    def test_without_fit(self):
        chart = histogram_chart(np.array([1.0]), np.array([0.2]))
        assert "*" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_chart(np.array([1.0]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            histogram_chart(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            histogram_chart(np.array([1.0]), np.array([0.1]), np.array([0.1, 0.2]))
