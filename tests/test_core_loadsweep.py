"""Tests for the latency-vs-load sweep harness."""

import pytest

from repro import characterize_shared_memory, create_app
from repro.core import measure_load_point, sweep_load
from repro.mesh import MeshConfig


@pytest.fixture(scope="module")
def fft_characterization():
    return characterize_shared_memory(create_app("1d-fft", n=128)).characterization


class TestSweepLoad:
    def test_points_in_order_and_rate_increases(self, fft_characterization):
        sweep = sweep_load(
            fft_characterization,
            rate_scales=(0.5, 2.0, 8.0),
            messages_per_source=60,
        )
        assert [p.rate_scale for p in sweep.points] == [0.5, 2.0, 8.0]
        achieved = [p.achieved_rate for p in sweep.points]
        assert achieved[0] < achieved[-1]
        requested = [p.requested_rate for p in sweep.points]
        assert requested == sorted(requested)

    def test_latency_floor_is_first_point(self, fft_characterization):
        sweep = sweep_load(
            fft_characterization, rate_scales=(0.5, 4.0), messages_per_source=60
        )
        assert sweep.zero_load_latency == sweep.points[0].mean_latency

    def test_efficiency_high_at_light_load(self, fft_characterization):
        sweep = sweep_load(
            fft_characterization, rate_scales=(0.25,), messages_per_source=60
        )
        assert sweep.points[0].efficiency > 0.6

    def test_saturation_detected_on_slow_network(self, fft_characterization):
        # Slow channels cap throughput; heavy requests can't be met.
        slow = MeshConfig(width=4, height=2, channel_time=20.0)
        sweep = sweep_load(
            fft_characterization,
            mesh_config=slow,
            rate_scales=(1.0, 8.0, 64.0),
            messages_per_source=40,
            efficiency_threshold=0.5,
        )
        assert sweep.saturation_scale is not None
        last = sweep.points[-1]
        assert last.efficiency < 0.5
        assert "saturates near" in sweep.describe()

    def test_no_saturation_reported_when_light(self, fft_characterization):
        sweep = sweep_load(
            fft_characterization,
            rate_scales=(0.25, 0.5),
            messages_per_source=40,
            efficiency_threshold=0.3,
        )
        assert sweep.saturation_scale is None
        assert "no saturation" in sweep.describe()

    def test_closed_loop_plateau_past_saturation(self, fft_characterization):
        # Sources are closed-loop, so past saturation the achieved rate
        # plateaus at the network's capacity instead of growing with the
        # requested rate: doubling the request must not double delivery.
        slow = MeshConfig(width=4, height=2, channel_time=20.0)
        sweep = sweep_load(
            fft_characterization,
            mesh_config=slow,
            rate_scales=(8.0, 32.0, 64.0),
            messages_per_source=40,
        )
        assert sweep.saturation_scale is not None
        saturated = [
            p for p in sweep.points if p.rate_scale >= sweep.saturation_scale
        ]
        assert len(saturated) >= 2
        first, last = saturated[0], saturated[-1]
        requested_growth = last.requested_rate / first.requested_rate
        achieved_growth = last.achieved_rate / first.achieved_rate
        assert achieved_growth < requested_growth / 2
        assert achieved_growth < 1.5

    def test_measure_load_point_matches_sweep(self, fft_characterization):
        measurement = measure_load_point(
            fft_characterization,
            rate_scale=2.0,
            messages_per_source=60,
            seed=99,
        )
        sweep = sweep_load(
            fft_characterization, rate_scales=(2.0,), messages_per_source=60, seed=99
        )
        assert measurement.point == sweep.points[0]
        assert len(measurement.log) > 0

    def test_validation(self, fft_characterization):
        with pytest.raises(ValueError):
            sweep_load(fft_characterization, rate_scales=())
        with pytest.raises(ValueError):
            sweep_load(fft_characterization, rate_scales=(2.0, 1.0))
        with pytest.raises(ValueError):
            sweep_load(
                fft_characterization, rate_scales=(1.0,), efficiency_threshold=1.5
            )
        with pytest.raises(ValueError):
            sweep_load(fft_characterization, rate_scales=(0.0, 1.0))
