"""Tests for phase segmentation of activity logs."""

import pytest

from repro import characterize_shared_memory, create_app
from repro.core import PhaseSegment, phase_table, segment_phases
from repro.mesh import MeshConfig, MeshNetwork, NetworkMessage
from repro.simkernel import Simulator, hold


def clustered_log(cluster_gap=1.0, phase_gap=100.0, phases=3, per_phase=5):
    sim = Simulator()
    net = MeshNetwork(sim, MeshConfig())

    def driver():
        for phase in range(phases):
            for i in range(per_phase):
                yield from net.transfer(
                    NetworkMessage(src=0, dst=1 + (phase % 7), length_bytes=8)
                )
                yield hold(cluster_gap)
            yield hold(phase_gap)

    sim.process(driver(), name="d")
    sim.run()
    return net.log


class TestSegmentPhases:
    def test_splits_at_lulls(self):
        log = clustered_log(phases=3, per_phase=5)
        segments = segment_phases(log)
        assert len(segments) == 3
        assert all(s.message_count == 5 for s in segments)

    def test_indices_and_times_ordered(self):
        segments = segment_phases(clustered_log())
        for a, b in zip(segments, segments[1:]):
            assert a.index + 1 == b.index
            assert a.end_time < b.start_time

    def test_absolute_threshold(self):
        log = clustered_log(cluster_gap=1.0, phase_gap=100.0)
        one = segment_phases(log, threshold=1e9)
        assert len(one) == 1
        many = segment_phases(log, threshold=0.5)
        assert len(many) == len(log)

    def test_empty_log_rejected(self):
        from repro.mesh import NetworkLog

        with pytest.raises(ValueError):
            segment_phases(NetworkLog())

    def test_bad_gap_factor_rejected(self):
        with pytest.raises(ValueError):
            segment_phases(clustered_log(), gap_factor=0)

    def test_single_message_log(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig())
        net.inject(NetworkMessage(src=0, dst=1, length_bytes=8))
        sim.run()
        segments = segment_phases(net.log)
        assert len(segments) == 1
        assert segments[0].message_count == 1

    def test_segments_partition_the_log(self):
        log = clustered_log(phases=4, per_phase=6)
        segments = segment_phases(log)
        assert sum(s.message_count for s in segments) == len(log)


class TestPhaseAnalysis:
    def test_modal_xor_distance(self):
        log = clustered_log(phases=1, per_phase=5)  # all 0 -> 1
        segment = segment_phases(log)[0]
        assert segment.modal_xor_distance() == 1

    def test_sync_traffic_excluded_from_data(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig())

        def driver():
            yield from net.transfer(
                NetworkMessage(src=0, dst=1, length_bytes=8, kind="barrier_arrive")
            )
            yield from net.transfer(
                NetworkMessage(src=0, dst=2, length_bytes=32, kind="data_reply")
            )

        sim.process(driver(), name="d")
        sim.run()
        segment = segment_phases(net.log, threshold=1e9)[0]
        assert len(segment.data_records()) == 1
        assert segment.modal_xor_distance() == 2

    def test_phase_table_renders(self):
        table = phase_table(segment_phases(clustered_log()))
        assert "phase" in table and "xor" in table


class TestFFTPhaseStructure:
    """The headline E17 result at test scale."""

    @pytest.fixture(scope="class")
    def fft_segments(self):
        run = characterize_shared_memory(create_app("1d-fft", n=256))
        return segment_phases(run.log)

    def test_local_stages_move_no_data(self, fft_segments):
        # The first stages of the FFT are chunk-internal: barrier-only
        # phases (no coherence data traffic).
        assert fft_segments[0].modal_xor_distance() is None

    def test_remote_stages_have_single_xor_partner(self, fft_segments):
        distances = [
            s.modal_xor_distance()
            for s in fft_segments
            if s.modal_xor_distance() is not None
        ]
        assert set(distances) == {1, 2, 4}
        # Stage order: distance-1 exchanges before distance-2 before 4.
        first_seen = {d: distances.index(d) for d in (1, 2, 4)}
        assert first_seen[1] < first_seen[2] < first_seen[4]
