"""Tests for the characterization core: attributes, analyses, pipelines,
synthetic generation and validation."""

import numpy as np
import pytest

from repro.apps.shared.fft1d import FFT1DApp
from repro.apps.shared.is_sort import IntegerSortApp
from repro.apps.mp.fft3d import FFT3DApp
from repro.core import (
    SyntheticTrafficGenerator,
    analyze_spatial,
    analyze_temporal,
    analyze_volume,
    characterize_log,
    characterize_message_passing,
    characterize_shared_memory,
    compare_logs,
)
from repro.core.report import full_report, spatial_table, temporal_table, volume_table
from repro.mesh import MeshConfig, MeshNetwork, NetworkMessage
from repro.simkernel import Simulator, hold


def synthetic_log(gaps_by_source, mesh=MeshConfig(), lengths=64):
    """Drive a small mesh with deterministic per-source gaps."""
    sim = Simulator()
    net = MeshNetwork(sim, mesh)
    for src, (gap, dsts) in gaps_by_source.items():
        def source(src=src, gap=gap, dsts=dsts):
            for dst in dsts:
                yield hold(gap)
                yield from net.transfer(
                    NetworkMessage(src=src, dst=dst, length_bytes=lengths)
                )
        sim.process(source(), name=f"s{src}")
    sim.run()
    return net.log


class TestAnalyses:
    def test_temporal_on_poisson_like_log(self):
        rng = np.random.default_rng(0)
        log = synthetic_log(
            {s: (float(rng.uniform(5, 15)), list(rng.integers(0, 8, 60))) for s in range(8)}
        )
        temporal = analyze_temporal(log)
        assert temporal.sample_size > 100
        assert temporal.rate > 0
        assert 0 <= temporal.fit.ks <= 1
        assert "rate=" in temporal.describe()

    def test_temporal_per_source(self):
        log = synthetic_log({s: (10.0, [(s + 1) % 8] * 40) for s in range(8)})
        temporal = analyze_temporal(log, per_source=True)
        assert set(temporal.per_source_fits) == set(range(8))
        # Deterministic per-source gaps -> deterministic fits.
        assert all(
            f.name == "deterministic" for f in temporal.per_source_fits.values()
        )

    def test_temporal_requires_enough_data(self):
        log = synthetic_log({0: (5.0, [1])})
        with pytest.raises(ValueError):
            analyze_temporal(log)

    def test_spatial_identifies_uniform(self):
        rng = np.random.default_rng(1)
        dsts = {s: [int(d) for d in rng.integers(0, 8, 700) if d != s] for s in range(8)}
        log = synthetic_log({s: (3.0, dsts[s]) for s in range(8)})
        spatial = analyze_spatial(log, 4, 2)
        assert spatial.dominant_pattern == "uniform"
        assert spatial.fraction_matrix.shape == (8, 8)

    def test_spatial_identifies_favorite(self):
        log = synthetic_log({s: (3.0, [0] * 30) for s in range(1, 8)})
        spatial = analyze_spatial(log, 4, 2)
        for src in range(1, 8):
            assert spatial.favorite_of(src) == 0
        assert spatial.dominant_pattern == "bimodal-uniform"

    def test_spatial_empty_log_rejected(self):
        log = synthetic_log({})
        with pytest.raises(ValueError):
            analyze_spatial(log, 4, 2)

    def test_volume_length_modes(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig())

        def source():
            for i in range(30):
                yield hold(5.0)
                yield from net.transfer(
                    NetworkMessage(src=0, dst=1, length_bytes=8 if i % 3 else 64)
                )

        sim.process(source(), name="s")
        sim.run()
        volume = analyze_volume(net.log, 8)
        assert volume.message_count == 30
        assert set(volume.length_fractions) == {8, 64}
        assert volume.length_fractions[8] == pytest.approx(2 / 3)
        modes = volume.modal_lengths(top=1)
        assert list(modes) == [8]
        assert "modes" in volume.describe()

    def test_volume_empty_log_rejected(self):
        with pytest.raises(ValueError):
            analyze_volume(synthetic_log({}), 8)


class TestPipelines:
    @pytest.fixture(scope="class")
    def fft_run(self):
        return characterize_shared_memory(FFT1DApp(n=128))

    @pytest.fixture(scope="class")
    def fft3d_run(self):
        return characterize_message_passing(FFT3DApp(n=16))

    def test_dynamic_strategy_produces_characterization(self, fft_run):
        c = fft_run.characterization
        assert c.app_name == "1d-fft"
        assert c.strategy == "dynamic"
        assert c.num_nodes == 8
        assert c.temporal.sample_size > 50
        assert len(fft_run.log) > 50
        assert fft_run.trace is None

    def test_fft_spatial_is_butterfly(self, fft_run):
        assert fft_run.characterization.spatial.dominant_pattern == "butterfly"

    def test_fft_lengths_bimodal_control_vs_data(self, fft_run):
        modes = fft_run.characterization.volume.length_fractions
        # Control messages (8B) and cache blocks (32B) only.
        assert set(modes) == {8, 32}

    def test_static_strategy_produces_characterization(self, fft3d_run):
        c = fft3d_run.characterization
        assert c.strategy == "static"
        assert fft3d_run.trace is not None
        assert len(fft3d_run.trace) == 56  # 8 ranks x 7 alltoall partners

    def test_fft3d_spatial_uniform(self, fft3d_run):
        assert fft3d_run.characterization.spatial.dominant_pattern == "uniform"
        for fit in fft3d_run.characterization.spatial.per_source.values():
            assert fit.r2 > 0.99

    def test_is_favorite_processor(self):
        run = characterize_shared_memory(IntegerSortApp(n=512, buckets=32))
        spatial = run.characterization.spatial
        favorites = [spatial.favorite_of(src) for src in range(1, 8)]
        assert favorites.count(0) >= 6

    def test_characterize_log_reusable(self, fft_run):
        again = characterize_log(fft_run.log, MeshConfig(), app_name="redo")
        assert again.app_name == "redo"
        assert again.temporal.sample_size == fft_run.characterization.temporal.sample_size

    def test_describe_renders(self, fft_run):
        text = fft_run.characterization.describe()
        assert "1d-fft" in text and "temporal:" in text

    def test_report_tables_render(self, fft_run, fft3d_run):
        results = [fft_run.characterization, fft3d_run.characterization]
        assert "application" in temporal_table(results)
        assert "spatial: 1d-fft" in spatial_table(results[0])
        assert "volume: 3d-fft" in volume_table(results[1])
        report = full_report(results)
        assert report.count("===") >= 4


class TestSyntheticAndValidation:
    @pytest.fixture(scope="class")
    def fft_run(self):
        return characterize_shared_memory(FFT1DApp(n=128))

    def test_generator_reproduces_rate_and_lengths(self, fft_run):
        gen = SyntheticTrafficGenerator(fft_run.characterization, seed=7)
        log = gen.generate(messages_per_source=100)
        assert len(log) == 800
        report = compare_logs(fft_run.log, log)
        assert report.rate_error < 0.5
        assert report.length_error < 0.1

    def test_generator_respects_spatial_model(self, fft_run):
        gen = SyntheticTrafficGenerator(fft_run.characterization, seed=8)
        log = gen.generate(messages_per_source=200)
        # Butterfly model: traffic only at XOR-power partners.
        for src in range(8):
            counts = log.destination_counts(src, 8)
            partners = {src ^ 1, src ^ 2, src ^ 4}
            for dst in range(8):
                if dst not in partners:
                    assert counts[dst] == 0

    def test_rate_scale_increases_load(self, fft_run):
        slow = SyntheticTrafficGenerator(fft_run.characterization, seed=9, rate_scale=1.0)
        fast = SyntheticTrafficGenerator(fft_run.characterization, seed=9, rate_scale=4.0)
        slow_log = slow.generate(messages_per_source=100)
        fast_log = fast.generate(messages_per_source=100)
        assert fast_log.offered_rate() > slow_log.offered_rate() * 2

    def test_mesh_mismatch_rejected(self, fft_run):
        with pytest.raises(ValueError):
            SyntheticTrafficGenerator(
                fft_run.characterization, mesh_config=MeshConfig(width=4, height=4)
            )

    def test_bad_parameters_rejected(self, fft_run):
        with pytest.raises(ValueError):
            SyntheticTrafficGenerator(fft_run.characterization, rate_scale=0.0)
        gen = SyntheticTrafficGenerator(fft_run.characterization)
        with pytest.raises(ValueError):
            gen.generate(messages_per_source=0)

    def test_compare_logs_requires_messages(self, fft_run):
        from repro.mesh import NetworkLog

        with pytest.raises(ValueError):
            compare_logs(fft_run.log, NetworkLog())

    def test_validation_report_renders(self, fft_run):
        gen = SyntheticTrafficGenerator(fft_run.characterization, seed=10)
        report = compare_logs(fft_run.log, gen.generate(messages_per_source=100))
        text = report.describe()
        assert "mean latency" in text and "rel.err" in text
        assert isinstance(report.acceptable(), bool)
