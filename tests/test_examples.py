"""Smoke tests: every example script runs end to end.

Examples are the repository's user-facing entry points; each ``main``
must execute without error and print its headline sections.  They run
at their shipped problem sizes (seconds each), so this module doubles
as a coarse integration test of the whole stack.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys, argv=("prog",)):
    """Execute an example as __main__ and return its stdout."""
    old_argv = sys.argv
    sys.argv = list(argv)
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "=== 1d-fft (dynamic, 8 nodes) ===" in out
    assert "spatial distribution" not in out  # quickstart uses tables
    assert "network log:" in out


def test_characterize_shared_memory_small(capsys):
    out = run_example(
        "characterize_shared_memory.py", capsys, argv=("prog", "--small")
    )
    for name in ("1d-fft", "is", "cholesky", "nbody", "maxflow"):
        assert name in out
    assert "favorites: p1->p0" in out  # IS favorite story
    assert "dominant pattern: butterfly" in out


def test_characterize_message_passing(capsys):
    out = run_example("characterize_message_passing.py", capsys)
    assert "3d-fft" in out and "mg" in out
    assert "dominant pattern: uniform" in out


def test_synthetic_traffic_study(capsys):
    out = run_example("synthetic_traffic_study.py", capsys)
    assert "synthetic-vs-original validation" in out
    assert "rate scale" in out


def test_phase_analysis(capsys):
    out = run_example("phase_analysis.py", capsys)
    assert "execution phases" in out
    assert "XOR-distance 1" in out
    assert "autocorrelation:" in out


def test_icn_design_study(capsys):
    out = run_example("icn_design_study.py", capsys)
    assert "topology comparison" in out
    assert "hypercube" in out
    assert "bit-complement" in out
