"""Tests for locks, barriers and the thread/array API."""

import pytest

from repro.coherence import MessageKind
from repro.exec_driven import ExecutionDrivenSimulation
from repro.mesh import MeshConfig


def make_sim():
    return ExecutionDrivenSimulation(mesh_config=MeshConfig(width=4, height=2))


class TestSharedArray:
    def test_allocation_and_addressing(self):
        sim = make_sim()
        a = sim.array("a", 10)
        b = sim.array("b", 10)
        # Arrays never share a block.
        block_words = sim.coherence_config.block_words
        assert a.base % block_words == 0
        assert b.base >= a.base + 10

    def test_bounds_checking(self):
        sim = make_sim()
        a = sim.array("a", 4)
        with pytest.raises(IndexError):
            a.address(4)
        with pytest.raises(IndexError):
            a.address(-1)

    def test_fill_and_snapshot(self):
        sim = make_sim()
        a = sim.array("a", 3)
        a.fill([1, 2, 3])
        assert a.snapshot() == [1, 2, 3]
        with pytest.raises(ValueError):
            a.fill([1, 2])

    def test_duplicate_name_rejected(self):
        sim = make_sim()
        sim.array("a", 4)
        with pytest.raises(ValueError):
            sim.array("a", 4)
        assert sim.get_array("a").length == 4

    def test_zero_length_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.array("z", 0)


class TestLock:
    def test_mutual_exclusion(self):
        sim = make_sim()
        lock = sim.lock()
        counter = sim.array("counter", 1)
        counter.poke(0, 0)

        def worker(ctx):
            for _ in range(5):
                yield from ctx.lock(lock)
                value = yield from ctx.load(counter, 0)
                ctx.compute(10)
                yield from ctx.store(counter, 0, value + 1)
                yield from ctx.unlock(lock)

        sim.run(worker)
        assert counter.peek(0) == 40  # 8 procs * 5 increments
        assert lock.acquisitions == 40

    def test_lock_messages_logged(self):
        sim = make_sim()
        lock = sim.lock(home=5)

        def worker(ctx):
            if ctx.pid == 1:
                yield from ctx.lock(lock)
                yield from ctx.unlock(lock)

        sim.run(worker)
        kinds = sim.log.kinds()
        assert kinds.get(MessageKind.LOCK_REQ.value) == 1
        assert kinds.get(MessageKind.LOCK_GRANT.value) == 1
        assert kinds.get(MessageKind.LOCK_RELEASE.value) == 1

    def test_release_by_non_holder_rejected(self):
        sim = make_sim()
        lock = sim.lock()
        failures = []

        def worker(ctx):
            if ctx.pid == 0:
                yield from ctx.lock(lock)
            if ctx.pid == 1:
                ctx.compute(10_000)
                yield from ctx.machine.flush_cycles(ctx.pid)
                try:
                    yield from ctx.unlock(lock)
                except RuntimeError:
                    failures.append(ctx.pid)
            if ctx.pid == 0:
                ctx.compute(50_000)
                yield from ctx.machine.flush_cycles(ctx.pid)
                yield from ctx.unlock(lock)

        sim.run(worker)
        assert failures == [1]

    def test_contention_counter(self):
        sim = make_sim()
        lock = sim.lock()

        def worker(ctx):
            yield from ctx.lock(lock)
            ctx.compute(100)
            yield from ctx.unlock(lock)

        sim.run(worker)
        assert lock.contended_acquisitions >= 1


class TestBarrier:
    def test_all_threads_released_together(self):
        sim = make_sim()
        barrier = sim.barrier()
        after = []

        def worker(ctx):
            ctx.compute(ctx.pid * 100)  # staggered arrivals
            yield from ctx.barrier(barrier)
            after.append(ctx.now)

        sim.run(worker)
        assert len(after) == 8
        # Nobody proceeds before the last arrival's compute is done.
        assert min(after) >= 700

    def test_barrier_reusable_across_phases(self):
        sim = make_sim()
        barrier = sim.barrier()
        order = []

        def worker(ctx):
            for phase in range(3):
                yield from ctx.barrier(barrier)
                order.append((phase, ctx.pid))

        sim.run(worker)
        assert barrier.episodes == 3
        phases = [p for p, _ in order]
        assert phases == sorted(phases)

    def test_barrier_messages_logged(self):
        sim = make_sim()
        barrier = sim.barrier(home=0)

        def worker(ctx):
            yield from ctx.barrier(barrier)

        sim.run(worker)
        kinds = sim.log.kinds()
        # 7 remote arrivals + 7 remote releases (home's own are local).
        assert kinds.get(MessageKind.BARRIER_ARRIVE.value) == 7
        assert kinds.get(MessageKind.BARRIER_RELEASE.value) == 7

    def test_subset_barrier(self):
        sim = make_sim()
        barrier = sim.barrier(parties=2)
        reached = []

        def worker(ctx):
            if ctx.pid in (0, 1):
                yield from ctx.barrier(barrier)
                reached.append(ctx.pid)

        sim.run(worker)
        assert sorted(reached) == [0, 1]


class TestContextValidation:
    def test_bad_pid_rejected(self):
        sim = make_sim()
        from repro.exec_driven import ThreadContext

        with pytest.raises(ValueError):
            ThreadContext(sim.machine, 99)

    def test_negative_compute_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.contexts[0].compute(-1)

    def test_deadlock_detection(self):
        sim = make_sim()
        lock = sim.lock()

        def worker(ctx):
            if ctx.pid == 0:
                yield from ctx.lock(lock)
                # never released; everyone else hangs
            else:
                yield from ctx.lock(lock)

        with pytest.raises(RuntimeError, match="never finished"):
            sim.run(worker)
