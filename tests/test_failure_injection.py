"""Failure-injection and boundary-condition tests across the stack.

Errors should be loud, attributed, and leave no wedged state -- this
module drives the unhappy paths: crashing model processes, protocol
misuse, degenerate geometries, malformed traces, starved analyses.
"""

import numpy as np
import pytest

from repro.coherence import CoherenceConfig
from repro.exec_driven import ExecutionDrivenSimulation
from repro.mesh import MeshConfig, MeshNetwork, NetworkMessage
from repro.mp import MessagePassingRuntime
from repro.simkernel import (
    Facility,
    SimulationError,
    Simulator,
    hold,
    release,
    request,
)
from repro.trace import TraceLog, replay_trace


class TestKernelFailures:
    def test_crashing_process_propagates_with_original_type(self):
        sim = Simulator()

        def bad():
            yield hold(1.0)
            raise KeyError("model bug")

        sim.process(bad(), name="bad")
        with pytest.raises(KeyError, match="model bug"):
            sim.run()

    def test_crash_mid_facility_hold_does_not_wedge_others_waiting_elsewhere(self):
        sim = Simulator()
        fac = Facility(sim, name="f")
        finished = []

        def crasher():
            yield request(fac)
            raise ValueError("died holding the facility")

        def independent():
            yield hold(5.0)
            finished.append(sim.now)

        sim.process(crasher(), name="c")
        sim.process(independent(), name="i")
        with pytest.raises(ValueError):
            sim.run()
        # The run can be resumed; the independent process completes.
        sim.run()
        assert finished == [5.0]

    def test_join_on_failed_process_reraises(self):
        sim = Simulator()

        def worker():
            yield hold(1.0)
            raise RuntimeError("worker exploded")

        def boss():
            target = sim.process(worker(), name="w")
            try:
                yield from target.join()
            except RuntimeError:
                observed.append(True)

        observed = []
        sim.process(boss(), name="b")
        with pytest.raises(RuntimeError):
            # The worker's own failure surfaces from run()...
            sim.run()
        sim.run()
        # ...and the joiner observed it as well.
        assert observed == [True]

    def test_double_release_detected(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def bad():
            yield request(fac)
            yield release(fac)
            yield release(fac)

        sim.process(bad(), name="bad")
        with pytest.raises(SimulationError, match="does not hold"):
            sim.run()

    def test_activating_finished_process_rejected(self):
        sim = Simulator()

        def quick():
            return
            yield  # pragma: no cover

        proc = sim.process(quick(), name="q")
        sim.run()
        with pytest.raises(SimulationError):
            proc.activate()


class TestNetworkBoundaries:
    def test_1x1_mesh_only_local_traffic(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig(width=1, height=1))
        done = net.inject(NetworkMessage(src=0, dst=0, length_bytes=8))
        sim.run()
        assert done.value.hops == 0
        with pytest.raises(ValueError):
            net.inject(NetworkMessage(src=0, dst=1, length_bytes=8))

    def test_zero_byte_message_still_one_flit(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig())
        done = net.inject(NetworkMessage(src=0, dst=1, length_bytes=0))
        sim.run()
        assert done.value.length_bytes == 0
        assert done.value.deliver_time > 0

    def test_negative_length_rejected_at_construction(self):
        with pytest.raises(ValueError):
            NetworkMessage(src=0, dst=1, length_bytes=-1)

    def test_huge_message_delivered(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig())
        done = net.inject(NetworkMessage(src=0, dst=7, length_bytes=1_000_000))
        sim.run()
        record = done.value
        expected = net.config.zero_load_latency(record.hops, 1_000_000)
        assert record.latency == pytest.approx(expected)


class TestCoherenceMisuse:
    def test_thread_body_exception_carries_through_run(self):
        sim = ExecutionDrivenSimulation()
        data = sim.array("data", 8)

        def worker(ctx):
            value = yield from ctx.load(data, 0)
            if ctx.pid == 3:
                raise ArithmeticError("app bug on p3")

        with pytest.raises(ArithmeticError, match="app bug on p3"):
            sim.run(worker)

    def test_out_of_range_address_rejected(self):
        sim = ExecutionDrivenSimulation()
        data = sim.array("data", 8)

        def worker(ctx):
            if ctx.pid == 0:
                yield from ctx.load(data, 99)

        with pytest.raises(IndexError):
            sim.run(worker)

    def test_machine_rejects_zero_allocation(self):
        sim = ExecutionDrivenSimulation()
        with pytest.raises(ValueError):
            sim.machine.allocate(0)


class TestMPFailures:
    def test_rank_exception_propagates(self):
        runtime = MessagePassingRuntime(num_ranks=2)

        def body(comm):
            yield from comm.compute(1.0)
            if comm.rank == 1:
                raise OSError("rank 1 died")

        with pytest.raises(OSError):
            runtime.run(body)

    def test_recv_from_invalid_rank(self):
        runtime = MessagePassingRuntime(num_ranks=2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.recv(5)

        with pytest.raises(ValueError):
            runtime.run(body)

    def test_deadlocked_pair_detected(self):
        runtime = MessagePassingRuntime(num_ranks=2)

        def body(comm):
            # Both wait first: classic recv-recv deadlock.
            other = 1 - comm.rank
            yield from comm.recv(other)
            yield from comm.send(other, None, 8)

        with pytest.raises(RuntimeError, match="never finished"):
            runtime.run(body)


class TestTraceAndAnalysisBoundaries:
    def test_replay_empty_trace_is_empty_log(self):
        from repro.simkernel import Simulator as Sim

        log = replay_trace(TraceLog(), MeshNetwork(Sim(), MeshConfig()))
        assert len(log) == 0

    def test_trace_with_out_of_order_posts_keeps_nonnegative_gaps(self):
        trace = TraceLog()
        trace.record(src=0, dst=1, length_bytes=8, kind="p2p", tag=0, post_time=10.0)
        # A clock glitch: earlier post recorded later.
        trace.record(src=0, dst=2, length_bytes=8, kind="p2p", tag=0, post_time=5.0)
        assert trace.events[1].gap == 0.0

    def test_analyses_reject_starved_logs(self):
        from repro.core import analyze_spatial, analyze_temporal, analyze_volume
        from repro.mesh import NetworkLog

        empty = NetworkLog()
        with pytest.raises(ValueError):
            analyze_temporal(empty)
        with pytest.raises(ValueError):
            analyze_spatial(empty, 4, 2)
        with pytest.raises(ValueError):
            analyze_volume(empty, 8)

    def test_fit_rejects_non_finite_samples(self):
        from repro.stats import fit_distribution, fit_mle
        from repro.stats.distributions import Exponential

        data = np.array([1.0, 2.0, np.nan, 3.0])
        with pytest.raises(ValueError, match="non-finite"):
            fit_distribution(data)
        with pytest.raises(ValueError, match="non-finite"):
            fit_mle(np.array([1.0, np.inf, 2.0]), Exponential)
