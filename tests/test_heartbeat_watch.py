"""Tests for heartbeat streams and the watch surface.

Covers the HeartbeatWriter/read_heartbeats round-trip (including the
truncated-final-line reader contract), fleet scanning and rendering,
the heartbeat doctor check, the `repro watch` CLI, and the sweep
runner's per-cell heartbeat files.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.heartbeat import (
    HEARTBEAT_SCHEMA_VERSION,
    HeartbeatFollower,
    HeartbeatWriter,
    heartbeat_rows,
    last_heartbeat,
    read_heartbeats,
    render_fleet,
    safe_label,
    scan_heartbeat_dir,
    write_status_record,
)
from repro.obs.report import heartbeat_health
from repro.sweep import ResultCache, make_grid, run_sweep


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


class TestHeartbeatWriter:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        clock = FakeClock()
        writer = HeartbeatWriter(path, label="cell-a", wall_clock=clock)
        clock.now += 2.0
        writer.write_window(
            sim_time=50.0, events=1000, window={"net.delivered.rate": 3.0},
            health="ok",
        )
        clock.now += 2.0
        writer.finish("done", sim_time=100.0, events=2000)
        records = read_heartbeats(path)
        assert [r["status"] for r in records] == ["running", "running", "done"]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert all(r["schema"] == HEARTBEAT_SCHEMA_VERSION for r in records)
        assert all(r["label"] == "cell-a" for r in records)
        assert records[1]["events_per_sec"] == pytest.approx(1000 / 2.0)
        assert records[1]["window"]["net.delivered.rate"] == 3.0
        assert records[2]["sim_time"] == 100.0
        assert records[2]["events_per_sec"] == pytest.approx(2000 / 4.0)

    def test_finish_idempotent(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        writer = HeartbeatWriter(path, wall_clock=FakeClock())
        writer.finish("done")
        writer.finish("failed")  # no-op: stream already closed
        writer.write_window(sim_time=1.0, events=1)  # ditto
        assert [r["status"] for r in read_heartbeats(path)] == ["running", "done"]

    def test_context_manager_records_failure(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with pytest.raises(RuntimeError):
            with HeartbeatWriter(path, wall_clock=FakeClock()):
                raise RuntimeError("boom")
        final = last_heartbeat(path)
        assert final["status"] == "failed"
        assert final["error"] == "RuntimeError: boom"

    def test_truncating_previous_stream(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        HeartbeatWriter(path, wall_clock=FakeClock()).finish("failed")
        HeartbeatWriter(path, wall_clock=FakeClock()).finish("done")
        assert [r["status"] for r in read_heartbeats(path)] == ["running", "done"]


class TestReader:
    def test_truncated_final_line_dropped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        writer = HeartbeatWriter(path, wall_clock=FakeClock())
        writer.write_window(sim_time=5.0, events=10)
        with open(path, "a") as handle:
            handle.write('{"schema": 1, "label": "run", "st')  # cut mid-write
        records = read_heartbeats(path)
        assert len(records) == 2
        assert records[-1]["sim_time"] == 5.0

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"schema": 1, "status": "running"}\n')
            handle.write("not json at all\n")
            handle.write('{"schema": 1, "status": "done"}\n')
        with pytest.raises(ValueError, match=r":2: corrupt heartbeat record"):
            read_heartbeats(path)

    def test_empty_stream(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        open(path, "w").close()
        assert read_heartbeats(path) == []
        assert last_heartbeat(path) is None
        assert heartbeat_rows(path) == {}


class TestFleet:
    def test_safe_label(self):
        assert safe_label("1d-fft/4x2/invalidate rs=1.0") == "1d-fft_4x2_invalidate_rs=1.0"
        assert safe_label("...") == "run"

    def test_scan_dir_and_rows(self, tmp_path):
        write_status_record(str(tmp_path / "a.jsonl"), "a", "cached")
        HeartbeatWriter(str(tmp_path / "b.jsonl"), label="b",
                        wall_clock=FakeClock()).finish("done")
        open(str(tmp_path / "empty.jsonl"), "w").close()
        (tmp_path / "notes.txt").write_text("ignored")
        rows = scan_heartbeat_dir(str(tmp_path))
        assert sorted(rows) == ["a", "b"]
        assert rows["a"]["status"] == "cached"
        assert rows["b"]["status"] == "done"
        assert heartbeat_rows(str(tmp_path)) == rows
        single = heartbeat_rows(str(tmp_path / "b.jsonl"))
        assert list(single) == ["b"]

    def test_render_fleet_deterministic(self):
        rows = {
            "cell-b": {"status": "running", "health": "ok", "sim_time": 10.0,
                       "events": 123, "events_per_sec": 45.6},
            "cell-a": {"status": "done", "health": "ok", "sim_time": 99.0,
                       "events": 500, "events_per_sec": 10.0},
            "cell-c": {"status": "failed"},
        }
        text = render_fleet(rows)
        assert text == render_fleet(dict(reversed(list(rows.items()))))
        lines = text.splitlines()
        assert lines[0].split() == ["run", "status", "health", "sim-t",
                                    "events", "ev/s"]
        # Sorted by name, missing fields dashed, summary last.
        assert lines[2].startswith("cell-a")
        assert lines[4].split() == ["cell-c", "failed", "-", "-", "-", "-"]
        assert lines[-1] == "3 run(s): 1 done, 1 failed, 1 running"

    def test_render_fleet_age_column(self):
        rows = {"x": {"status": "running", "wall": 90.0}}
        text = render_fleet(rows, now=100.0)
        assert "age" in text.splitlines()[0]
        assert "10s" in text


class TestHeartbeatHealth:
    def _records(self, *statuses, health="ok"):
        records = [{"label": "r", "status": "running", "health": health,
                    "sim_time": 5.0, "events": 10}]
        records += [{"label": "r", "status": s} for s in statuses]
        return records

    def test_empty_stream_is_a_problem(self):
        lines, problems = heartbeat_health([])
        assert problems == 1
        assert "empty" in lines[0]

    def test_healthy_stream(self):
        lines, problems = heartbeat_health(self._records("done"))
        assert problems == 0
        assert any("done" in l for l in lines)

    def test_failed_and_unhealthy_windows_flagged(self):
        records = self._records("failed", health="saturating")
        records[1]["error"] = "StallError: no progress"
        lines, problems = heartbeat_health(records)
        assert problems >= 2
        joined = "\n".join(lines)
        assert "saturating" in joined and "StallError" in joined

    def test_flagged_windows_in_clean_run_are_notes_only(self):
        # A barrier storm can pin channels for one window; a run that
        # finished "done" recovered, so the flag must not fail doctor.
        lines, problems = heartbeat_health(
            self._records("done", health="saturating")
        )
        assert problems == 0
        assert any("saturating" in l and l.startswith("note:") for l in lines)

    def test_stream_ending_mid_run_flagged(self):
        lines, problems = heartbeat_health(self._records())
        assert problems == 1
        assert any("mid-run" in l for l in lines)


class TestWatchCli:
    def _finished_stream(self, tmp_path, status="done"):
        path = str(tmp_path / "run.jsonl")
        writer = HeartbeatWriter(path, label="run", wall_clock=FakeClock())
        writer.write_window(sim_time=10.0, events=100, health="ok")
        writer.finish(status, sim_time=20.0, events=200)
        return path

    def test_watch_once_renders_fleet(self, capsys, tmp_path):
        path = self._finished_stream(tmp_path)
        assert main(["watch", path, "--once"]) == 0
        out = capsys.readouterr().out
        assert out == render_fleet(heartbeat_rows(path)) + "\n"
        assert "1 run(s): 1 done" in out

    def test_watch_once_failed_run_exits_1(self, capsys, tmp_path):
        path = self._finished_stream(tmp_path, status="failed")
        assert main(["watch", path, "--once"]) == 1
        assert "failed" in capsys.readouterr().out

    def test_watch_loop_exits_when_fleet_settles(self, capsys, tmp_path):
        self._finished_stream(tmp_path)
        write_status_record(str(tmp_path / "other.jsonl"), "other", "cached")
        assert main(["watch", str(tmp_path), "--interval", "0.01"]) == 0
        assert "2 run(s)" in capsys.readouterr().out

    def test_watch_missing_path_is_cli_error(self, capsys, tmp_path):
        code = main(["watch", str(tmp_path / "nope.jsonl"), "--once"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_doctor_reads_heartbeat_stream(self, capsys, tmp_path):
        path = self._finished_stream(tmp_path)
        assert main(["doctor", path]) == 0
        out = capsys.readouterr().out
        assert "heartbeat stream" in out and "healthy" in out
        failed = self._finished_stream(tmp_path, status="failed")
        assert main(["doctor", failed]) == 1


class TestHeartbeatFollower:
    def test_incremental_poll_single_file(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        follower = HeartbeatFollower(path)
        assert follower.poll() == []  # not created yet
        writer = HeartbeatWriter(path, label="r", wall_clock=FakeClock())
        first = follower.poll()
        assert [r["status"] for r in first] == ["running"]
        writer.write_window(sim_time=5.0, events=10)
        writer.finish("done", sim_time=9.0, events=20)
        second = follower.poll()
        assert [r["status"] for r in second] == ["running", "done"]
        assert follower.poll() == []  # fully drained

    def test_follows_files_appearing_in_directory(self, tmp_path):
        follower = HeartbeatFollower(str(tmp_path))
        assert follower.poll() == []
        write_status_record(str(tmp_path / "a.jsonl"), "a", "cached")
        assert [r["label"] for r in follower.poll()] == ["a"]
        write_status_record(str(tmp_path / "b.jsonl"), "b", "cached")
        assert [r["label"] for r in follower.poll()] == ["b"]

    def test_partial_line_held_until_complete(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        follower = HeartbeatFollower(path)
        with open(path, "w") as handle:
            handle.write('{"label": "r", "status": "running"}\n')
            handle.write('{"label": "r", "sta')  # writer mid-record
            handle.flush()
        assert [r["status"] for r in follower.poll()] == ["running"]
        with open(path, "a") as handle:
            handle.write('tus": "done"}\n')
        assert [r["status"] for r in follower.poll()] == ["done"]

    def test_truncated_restart_resets_offset(self, tmp_path):
        # A retried cell reopens its stream with truncation; the
        # follower must notice the shrink and re-read from the start.
        path = str(tmp_path / "run.jsonl")
        follower = HeartbeatFollower(path)
        writer = HeartbeatWriter(path, label="attempt1", wall_clock=FakeClock())
        writer.write_window(sim_time=5.0, events=10)
        writer.write_window(sim_time=6.0, events=20)
        assert len(follower.poll()) == 3
        HeartbeatWriter(path, label="attempt2", wall_clock=FakeClock())
        records = follower.poll()
        assert [r["label"] for r in records] == ["attempt2"]

    def test_same_size_restart_is_detected(self, tmp_path):
        # Regression: a restarted stream whose rewritten file is the
        # same size as (or larger than) the stored offset used to slip
        # past the shrink check, so the follower never re-read it.  The
        # first-line fingerprint catches the rewrite even when sizes
        # line up exactly.
        path = str(tmp_path / "run.jsonl")
        first = '{"schema": 1, "label": "attempt-A", "status": "running"}\n'
        second = '{"schema": 1, "label": "attempt-B", "status": "running"}\n'
        assert len(first) == len(second)  # byte-identical sizes
        follower = HeartbeatFollower(path)
        with open(path, "w") as handle:
            handle.write(first)
        assert [r["label"] for r in follower.poll()] == ["attempt-A"]
        with open(path, "w") as handle:
            handle.write(second)  # same size: offset == new size
        assert [r["label"] for r in follower.poll()] == ["attempt-B"]

    def test_larger_restart_is_detected(self, tmp_path):
        # Same regression, growth flavor: the restarted stream is
        # already *longer* than the stored offset, so the old
        # size-shrunk check saw ordinary growth and resumed mid-record.
        path = str(tmp_path / "run.jsonl")
        follower = HeartbeatFollower(path)
        with open(path, "w") as handle:
            handle.write('{"label": "a", "status": "running"}\n')
        assert [r["label"] for r in follower.poll()] == ["a"]
        with open(path, "w") as handle:
            handle.write('{"label": "b-restarted", "status": "running"}\n')
            handle.write('{"label": "b-restarted", "status": "done"}\n')
        records = follower.poll()
        assert [r["label"] for r in records] == ["b-restarted", "b-restarted"]
        assert [r["status"] for r in records] == ["running", "done"]

    def test_fingerprint_survives_plain_append(self, tmp_path):
        # Appends to an unchanged stream must not be mistaken for
        # restarts (the fingerprint only covers the first line).
        path = str(tmp_path / "run.jsonl")
        follower = HeartbeatFollower(path)
        writer = HeartbeatWriter(path, label="r", wall_clock=FakeClock())
        assert len(follower.poll()) == 1
        writer.write_window(sim_time=1.0, events=5)
        writer.write_window(sim_time=2.0, events=9)
        assert len(follower.poll()) == 2  # only the new records

    def test_unparseable_lines_skipped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"status": "running"}\n')
            handle.write("garbage\n")
            handle.write('{"status": "done"}\n')
        records = HeartbeatFollower(path).poll()
        assert [r["status"] for r in records] == ["running", "done"]


class TestWatchLatePath:
    def test_live_watch_waits_for_directory(self, capsys, tmp_path):
        # `repro serve` creates a job's heartbeat dir only once the job
        # starts; watch must poll for the path instead of erroring.
        import threading
        import time as time_module

        hb = tmp_path / "hb-not-yet"

        def populate():
            time_module.sleep(0.2)
            HeartbeatWriter(
                str(hb / "cell.jsonl"), label="late", wall_clock=FakeClock()
            ).finish("done", sim_time=1.0, events=2)

        thread = threading.Thread(target=populate)
        thread.start()
        try:
            code = main(["watch", str(hb), "--interval", "0.05"])
        finally:
            thread.join()
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith(f"waiting for {hb} to appear...")
        assert "1 run(s): 1 done" in out

    def test_once_still_errors_on_missing_path(self, capsys, tmp_path):
        assert main(["watch", str(tmp_path / "nope"), "--once"]) == 2
        assert "no such heartbeat" in capsys.readouterr().err


class TestWatchUrl:
    def _service(self, tmp_path):
        from repro.serve import BackgroundService, JobManager, ServiceConfig
        from repro.sweep import ResultCache

        def cell(spec_doc, heartbeat=None):
            if heartbeat is not None:
                writer = HeartbeatWriter(heartbeat, label=spec_doc["app"])
                writer.finish("done", sim_time=1.0, events=10)
            return {"schema": 1, "app": spec_doc["app"], "messages": 3}

        manager = JobManager(
            str(tmp_path / "state"),
            ResultCache(str(tmp_path / "cache")),
            cell_fn=cell,
        )
        config = ServiceConfig(
            port=0,
            state_dir=str(tmp_path / "state"),
            cache_dir=str(tmp_path / "cache"),
            rate=0.0,
            poll_interval=0.02,
        )
        return BackgroundService(config, manager=manager)

    def _submit(self, service):
        import json as json_module
        import urllib.request

        body = json_module.dumps(
            {
                "grid": {
                    "apps": ["1d-fft"],
                    "app_params": {"1d-fft": {"n": 32}},
                    "meshes": ["2x2"],
                    "messages_per_source": 10,
                }
            }
        ).encode()
        request = urllib.request.Request(
            service.base_url + "/v1/jobs",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json_module.loads(response.read())["id"]

    def test_watch_url_follows_job_to_done(self, capsys, tmp_path):
        with self._service(tmp_path) as service:
            job_id = self._submit(service)
            code = main(
                ["watch", "--url", f"{service.base_url}/v1/jobs/{job_id}/events"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert f"job {job_id}" in out
        assert "1d-fft: done" in out
        assert "job ended: done" in out

    def test_watch_url_scheme_optional(self, capsys, tmp_path):
        with self._service(tmp_path) as service:
            job_id = self._submit(service)
            bare = f"{service.service.config.host}:{service.port}"
            code = main(["watch", "--url", f"{bare}/v1/jobs/{job_id}/events"])
        assert code == 0

    def test_watch_url_and_path_conflict(self, capsys, tmp_path):
        code = main(["watch", str(tmp_path), "--url", "http://x/v1"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_watch_neither_path_nor_url(self, capsys):
        assert main(["watch"]) == 2
        assert "PATH or --url" in capsys.readouterr().err

    def test_watch_url_unreachable(self, capsys):
        code = main(["watch", "--url", "http://127.0.0.1:9/v1/jobs/x/events"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSweepHeartbeats:
    def _grid(self):
        return make_grid(
            apps=("1d-fft",),
            app_params={"1d-fft": {"n": 32}},
            meshes=("2x2",),
            rate_scales=(1.0, 2.0),
            messages_per_source=20,
        )

    def test_per_cell_streams_written(self, tmp_path):
        hb = str(tmp_path / "hb")
        result = run_sweep(self._grid(), jobs=1, heartbeat_dir=hb)
        assert not result.failures
        rows = scan_heartbeat_dir(hb)
        assert len(rows) == 2
        assert all(r["status"] == "done" for r in rows.values())
        # Workers stream real progress records, not just the terminal.
        stems = sorted(rows)
        records = read_heartbeats(os.path.join(hb, stems[0] + ".jsonl"))
        assert records[0]["status"] == "running"
        assert records[-1]["events"] > 0

    def test_cached_cells_marked(self, tmp_path):
        hb = str(tmp_path / "hb")
        cache = ResultCache(str(tmp_path / "cache"))
        run_sweep(self._grid(), jobs=1, cache=cache)
        result = run_sweep(
            self._grid(), jobs=1, cache=cache, heartbeat_dir=hb
        )
        assert result.cache_hits == 2
        rows = scan_heartbeat_dir(hb)
        assert [r["status"] for r in rows.values()] == ["cached", "cached"]

    def test_heartbeat_dir_does_not_change_cache_key(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(self._grid(), jobs=1, cache=ResultCache(cache_dir),
                  heartbeat_dir=str(tmp_path / "hb"))
        rerun = run_sweep(self._grid(), jobs=1, cache=ResultCache(cache_dir))
        assert rerun.cache_hits == 2 and rerun.cache_misses == 0

    def test_pool_workers_write_heartbeats(self, tmp_path):
        hb = str(tmp_path / "hb")
        result = run_sweep(self._grid(), jobs=2, heartbeat_dir=hb)
        assert not result.failures
        rows = scan_heartbeat_dir(hb)
        assert len(rows) == 2
        assert all(r["status"] == "done" for r in rows.values())

    def test_sweep_cli_heartbeat_dir_and_progress(self, capsys, tmp_path):
        hb = str(tmp_path / "hb")
        code = main([
            "sweep", "run", "--app", "1d-fft", "--param", "n=32",
            "--mesh", "2x2", "--messages", "20", "--no-cache",
            "--heartbeat-dir", hb,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "computed" in out and "cells/s" in out
        assert len(scan_heartbeat_dir(hb)) == 1
        capsys.readouterr()
        assert main(["watch", hb, "--once"]) == 0
        assert "1 run(s): 1 done" in capsys.readouterr().out
