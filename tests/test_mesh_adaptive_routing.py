"""Tests for the adaptive (XY/YX) routing extension."""

import pytest

from repro.mesh import MeshConfig, MeshNetwork, MeshTopology, NetworkMessage
from repro.simkernel import Simulator, hold


def adaptive_config(**kwargs):
    return MeshConfig(
        width=4, height=2, routing="adaptive", virtual_channels=2, **kwargs
    )


class TestRouteYX:
    def test_yx_traverses_y_first(self):
        topo = MeshTopology(4, 2)
        path = topo.route_yx(0, 7)
        assert (path[0].src, path[0].dst) == (0, 4)  # down first
        assert [(h.src, h.dst) for h in path[1:]] == [(4, 5), (5, 6), (6, 7)]

    def test_same_length_as_xy(self):
        topo = MeshTopology(4, 4)
        for src in range(16):
            for dst in range(16):
                assert len(topo.route_yx(src, dst)) == len(topo.route(src, dst))

    def test_same_endpoints(self):
        topo = MeshTopology(4, 4)
        for src, dst in ((0, 15), (3, 12), (5, 10)):
            path = topo.route_yx(src, dst)
            assert path[0].src == src and path[-1].dst == dst


class TestAdaptiveConfig:
    def test_requires_mesh(self):
        with pytest.raises(ValueError):
            MeshConfig(topology="torus", routing="adaptive", virtual_channels=2)

    def test_requires_two_vcs(self):
        with pytest.raises(ValueError):
            MeshConfig(routing="adaptive", virtual_channels=1)

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            MeshConfig(routing="chaos")


class TestAdaptiveBehaviour:
    def run_hotspot(self, config, repeats=6):
        """Row-0 sources all streaming to node 7 (column congestion)."""
        sim = Simulator()
        net = MeshNetwork(sim, config)

        def source(src):
            for _ in range(repeats):
                yield from net.transfer(
                    NetworkMessage(src=src, dst=7, length_bytes=256)
                )

        for src in (0, 1, 2):
            sim.process(source(src), name=f"s{src}")
        sim.run()
        return net

    def test_all_delivered_no_deadlock(self):
        net = self.run_hotspot(adaptive_config())
        assert len(net.log) == 18
        assert net.in_flight == 0

    def test_takes_yx_under_congestion(self):
        net = self.run_hotspot(adaptive_config())
        assert net.adaptive_yx_taken > 0

    def test_adaptive_not_slower_than_deterministic(self):
        deterministic = self.run_hotspot(
            MeshConfig(width=4, height=2, virtual_channels=2)
        )
        adaptive = self.run_hotspot(adaptive_config())
        assert adaptive.log.mean_latency() <= deterministic.log.mean_latency() * 1.05

    def test_single_dimension_traffic_unaffected(self):
        # src and dst in the same row: XY == YX, no adaptivity needed.
        sim = Simulator()
        net = MeshNetwork(sim, adaptive_config())
        done = net.inject(NetworkMessage(src=0, dst=3, length_bytes=8))
        sim.run()
        assert net.adaptive_yx_taken == 0
        assert done.value.hops == 3

    def test_lanes_pinned_per_order(self):
        # YX worms must never touch lane 0 of their first hop.
        sim = Simulator()
        net = MeshNetwork(sim, adaptive_config())

        def blocker():
            # Saturate XY's first channel (0 -> 1).
            yield from net.transfer(NetworkMessage(src=0, dst=1, length_bytes=4096))

        def prober():
            yield hold(2.0)  # let the blocker seize (0, 1)
            yield from net.transfer(NetworkMessage(src=0, dst=5, length_bytes=8))

        sim.process(blocker(), name="blocker")
        sim.process(prober(), name="prober")
        sim.run()
        assert net.adaptive_yx_taken == 1
