"""Integration tests for the wormhole mesh network simulator."""

import pytest

from repro.mesh import MeshConfig, MeshNetwork, NetworkMessage
from repro.simkernel import Simulator, hold


def make_net(width=4, height=2, **kwargs):
    sim = Simulator()
    cfg = MeshConfig(width=width, height=height, **kwargs)
    return sim, MeshNetwork(sim, cfg)


class TestSingleMessage:
    def test_zero_load_latency_matches_config(self):
        sim, net = make_net()
        msg = NetworkMessage(src=0, dst=7, length_bytes=16)
        done = net.inject(msg)
        sim.run()
        record = done.value
        hops = net.topology.hops(0, 7)
        assert record.hops == hops
        assert record.latency == pytest.approx(net.config.zero_load_latency(hops, 16))
        assert record.contention == 0.0

    def test_local_message_zero_hops(self):
        sim, net = make_net()
        done = net.inject(NetworkMessage(src=3, dst=3, length_bytes=8))
        sim.run()
        record = done.value
        assert record.hops == 0
        assert record.latency == pytest.approx(net.config.zero_load_latency(0, 8))

    def test_log_record_fields(self):
        sim, net = make_net()
        msg = NetworkMessage(src=1, dst=6, length_bytes=32, kind="test")
        net.inject(msg)
        sim.run()
        assert len(net.log) == 1
        rec = net.log.records[0]
        assert rec.src == 1 and rec.dst == 6
        assert rec.length_bytes == 32
        assert rec.kind == "test"
        assert rec.inject_time == 0.0
        assert rec.deliver_time > 0.0

    def test_invalid_node_rejected(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.inject(NetworkMessage(src=0, dst=99, length_bytes=8))
            sim.run()


class TestContention:
    def test_same_source_messages_serialize_at_injection(self):
        sim, net = make_net()
        done1 = net.inject(NetworkMessage(src=0, dst=1, length_bytes=8))
        done2 = net.inject(NetworkMessage(src=0, dst=1, length_bytes=8))
        sim.run()
        r1, r2 = done1.value, done2.value
        assert r2.contention > 0.0
        assert r2.deliver_time > r1.deliver_time

    def test_crossing_messages_on_shared_channel_contend(self):
        sim, net = make_net(width=4, height=1)
        # Both messages use channel (1->2).
        d1 = net.inject(NetworkMessage(src=0, dst=3, length_bytes=64))
        d2 = net.inject(NetworkMessage(src=1, dst=3, length_bytes=64))
        sim.run()
        total_contention = d1.value.contention + d2.value.contention
        assert total_contention > 0.0

    def test_disjoint_paths_no_contention(self):
        sim, net = make_net(width=4, height=2)
        d1 = net.inject(NetworkMessage(src=0, dst=1, length_bytes=8))
        d2 = net.inject(NetworkMessage(src=6, dst=7, length_bytes=8))
        sim.run()
        assert d1.value.contention == 0.0
        assert d2.value.contention == 0.0

    def test_contention_increases_latency(self):
        sim, net = make_net(width=4, height=1)
        d1 = net.inject(NetworkMessage(src=0, dst=3, length_bytes=256))
        d2 = net.inject(NetworkMessage(src=0, dst=3, length_bytes=256))
        sim.run()
        zero_load = net.config.zero_load_latency(3, 256)
        assert d1.value.latency == pytest.approx(zero_load)
        assert d2.value.latency > zero_load


class TestDelivery:
    def test_handler_invoked(self):
        sim, net = make_net()
        seen = []
        net.register_handler(5, lambda msg, rec: seen.append((msg.msg_id, rec.dst)))
        msg = NetworkMessage(src=0, dst=5, length_bytes=8)
        net.inject(msg)
        sim.run()
        assert seen == [(msg.msg_id, 5)]

    def test_delivery_mailbox(self):
        sim, net = make_net()
        box = net.delivery_mailbox(2)
        net.inject(NetworkMessage(src=0, dst=2, length_bytes=8, payload="hi"))
        sim.run()
        assert box.pending == 1
        message, record = box.peek_all()[0]
        assert message.payload == "hi"
        assert record.dst == 2

    def test_blocking_transfer_from_process(self):
        sim, net = make_net()
        results = []

        def sender():
            yield hold(5.0)
            record = yield from net.transfer(NetworkMessage(src=0, dst=7, length_bytes=8))
            results.append((record.inject_time, sim.now))

        sim.process(sender(), name="sender")
        sim.run()
        inject_time, end = results[0]
        assert inject_time == 5.0
        assert end > 5.0


class TestNetworkStats:
    def test_counters(self):
        sim, net = make_net()
        for dst in (1, 2, 3):
            net.inject(NetworkMessage(src=0, dst=dst, length_bytes=8))
        sim.run()
        assert net.total_injected == 3
        assert net.total_delivered == 3
        assert net.in_flight == 0

    def test_channel_utilization_nonzero_on_used_channel(self):
        sim, net = make_net(width=2, height=1)

        def traffic():
            for _ in range(10):
                yield from net.transfer(NetworkMessage(src=0, dst=1, length_bytes=64))

        sim.process(traffic(), name="t")
        sim.run()
        assert net.channel(0, 1).utilization() > 0.0
        assert net.mean_channel_utilization() > 0.0
        assert net.max_channel_utilization() >= net.mean_channel_utilization()

    def test_channel_lookup_invalid(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.channel(0, 5)  # not adjacent in 4x2 mesh


class TestNetworkLogViews:
    def test_interarrival_and_destination_views(self):
        sim, net = make_net()

        def traffic():
            for dst in (1, 2, 1):
                yield from net.transfer(NetworkMessage(src=0, dst=dst, length_bytes=8))
                yield hold(10.0)

        sim.process(traffic(), name="t")
        sim.run()
        log = net.log
        inter = log.interarrival_times(src=0)
        assert len(inter) == 2
        assert (inter > 0).all()
        counts = log.destination_counts(0, net.config.num_nodes)
        assert counts[1] == 2 and counts[2] == 1
        fracs = log.destination_fractions(0, net.config.num_nodes)
        assert fracs.sum() == pytest.approx(1.0)
        assert fracs[1] == pytest.approx(2 / 3)

    def test_log_csv_roundtrip(self, tmp_path):
        sim, net = make_net()
        net.inject(NetworkMessage(src=0, dst=7, length_bytes=16))
        sim.run()
        path = str(tmp_path / "log.csv")
        net.log.write_csv(path)
        from repro.mesh import NetworkLog

        loaded = NetworkLog.read_csv(path)
        assert len(loaded) == 1
        assert loaded.records[0] == net.log.records[0]
