"""Tests for the classic synthetic traffic patterns."""

import numpy as np
import pytest

from repro.mesh import (
    BitComplementTraffic,
    BitReversalTraffic,
    HotspotTraffic,
    MeshConfig,
    TransposeTraffic,
    UniformTraffic,
    drive_pattern,
    make_pattern,
)

RNG = np.random.default_rng(9)


class TestPermutationPatterns:
    def test_bit_complement(self):
        pattern = BitComplementTraffic(8)
        assert pattern.destination(0, RNG) == 7
        assert pattern.destination(3, RNG) == 4
        assert pattern.destination(5, RNG) == 2

    def test_bit_complement_needs_power_of_two(self):
        with pytest.raises(ValueError):
            BitComplementTraffic(6)

    def test_bit_reversal(self):
        pattern = BitReversalTraffic(8)
        assert pattern.destination(0b001, RNG) == 0b100
        assert pattern.destination(0b110, RNG) == 0b011
        assert pattern.destination(0b111, RNG) == 0b111

    def test_transpose(self):
        pattern = TransposeTraffic(16)  # 4x4
        # (1, 2) -> (2, 1): node 9 -> node 6.
        assert pattern.destination(9, RNG) == 6
        # Diagonal maps to itself.
        assert pattern.destination(5, RNG) == 5

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            TransposeTraffic(8)

    def test_permutations_are_bijections(self):
        for pattern in (BitComplementTraffic(16), BitReversalTraffic(16),
                        TransposeTraffic(16)):
            dests = {pattern.destination(s, RNG) for s in range(16)}
            assert dests == set(range(16)), pattern.name


class TestProbabilisticPatterns:
    def test_uniform_never_self(self):
        pattern = UniformTraffic(8)
        draws = [pattern.destination(3, RNG) for _ in range(500)]
        assert 3 not in draws
        assert set(draws) == set(range(8)) - {3}

    def test_uniform_is_balanced(self):
        pattern = UniformTraffic(8)
        rng = np.random.default_rng(1)
        counts = np.zeros(8)
        for _ in range(7000):
            counts[pattern.destination(0, rng)] += 1
        assert counts[0] == 0
        assert counts[1:].std() < counts[1:].mean() * 0.15

    def test_hotspot_concentration(self):
        pattern = HotspotTraffic(8, hotspot=2, fraction=0.5)
        rng = np.random.default_rng(2)
        draws = [pattern.destination(0, rng) for _ in range(4000)]
        hot_fraction = draws.count(2) / len(draws)
        # 0.5 direct + ~1/7 of the uniform remainder.
        assert hot_fraction == pytest.approx(0.5 + 0.5 / 7, abs=0.05)

    def test_hotspot_source_is_hotspot(self):
        pattern = HotspotTraffic(8, hotspot=2, fraction=0.5)
        draws = [pattern.destination(2, RNG) for _ in range(200)]
        assert 2 not in draws

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(8, hotspot=9)
        with pytest.raises(ValueError):
            HotspotTraffic(8, fraction=1.5)


class TestFactoryAndHarness:
    def test_make_pattern(self):
        assert make_pattern("uniform", 8).name == "uniform"
        assert make_pattern("hotspot", 8, fraction=0.2).fraction == 0.2
        with pytest.raises(ValueError):
            make_pattern("zipf", 8)

    def test_drive_pattern_produces_log(self):
        pattern = make_pattern("uniform", 8)
        log = drive_pattern(pattern, MeshConfig(), messages_per_source=20, seed=5)
        assert len(log) == 160
        assert log.mean_latency() > 0

    def test_transpose_skips_self_messages(self):
        pattern = make_pattern("transpose", 16)
        log = drive_pattern(
            pattern, MeshConfig(width=4, height=4), messages_per_source=10
        )
        # Four diagonal nodes send nothing.
        assert len(log) == (16 - 4) * 10
        for record in log:
            assert record.src != record.dst

    def test_bit_complement_latency_exceeds_uniform(self):
        # Bit-complement maximizes distance on the mesh.
        config = MeshConfig(width=4, height=4)
        uniform_log = drive_pattern(
            make_pattern("uniform", 16), config, messages_per_source=30, seed=3
        )
        complement_log = drive_pattern(
            make_pattern("bit-complement", 16), config, messages_per_source=30, seed=3
        )
        assert complement_log.mean_latency() > uniform_log.mean_latency()

    def test_harness_validation(self):
        pattern = make_pattern("uniform", 8)
        with pytest.raises(ValueError):
            drive_pattern(pattern, MeshConfig(), messages_per_source=0)
        with pytest.raises(ValueError):
            drive_pattern(pattern, MeshConfig(), mean_gap=0)
        with pytest.raises(ValueError):
            drive_pattern(pattern, MeshConfig(width=4, height=4))

    def test_pattern_needs_two_nodes(self):
        with pytest.raises(ValueError):
            UniformTraffic(1)
