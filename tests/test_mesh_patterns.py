"""Tests for the classic synthetic traffic patterns."""

import numpy as np
import pytest

from repro.mesh import (
    BitComplementTraffic,
    BitReversalTraffic,
    HotspotTraffic,
    MeshConfig,
    TransposeTraffic,
    UniformTraffic,
    drive_pattern,
    make_pattern,
)

RNG = np.random.default_rng(9)


class TestPermutationPatterns:
    def test_bit_complement(self):
        pattern = BitComplementTraffic(8)
        assert pattern.destination(0, RNG) == 7
        assert pattern.destination(3, RNG) == 4
        assert pattern.destination(5, RNG) == 2

    def test_bit_complement_needs_power_of_two(self):
        with pytest.raises(ValueError):
            BitComplementTraffic(6)

    def test_bit_reversal(self):
        pattern = BitReversalTraffic(8)
        assert pattern.destination(0b001, RNG) == 0b100
        assert pattern.destination(0b110, RNG) == 0b011
        assert pattern.destination(0b111, RNG) == 0b111

    def test_transpose(self):
        pattern = TransposeTraffic(16)  # 4x4
        # (1, 2) -> (2, 1): node 9 -> node 6.
        assert pattern.destination(9, RNG) == 6
        # Diagonal maps to itself.
        assert pattern.destination(5, RNG) == 5

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            TransposeTraffic(8)

    def test_permutations_are_bijections(self):
        for pattern in (BitComplementTraffic(16), BitReversalTraffic(16),
                        TransposeTraffic(16)):
            dests = {pattern.destination(s, RNG) for s in range(16)}
            assert dests == set(range(16)), pattern.name


class TestProbabilisticPatterns:
    def test_uniform_never_self(self):
        pattern = UniformTraffic(8)
        draws = [pattern.destination(3, RNG) for _ in range(500)]
        assert 3 not in draws
        assert set(draws) == set(range(8)) - {3}

    def test_uniform_is_balanced(self):
        pattern = UniformTraffic(8)
        rng = np.random.default_rng(1)
        counts = np.zeros(8)
        for _ in range(7000):
            counts[pattern.destination(0, rng)] += 1
        assert counts[0] == 0
        assert counts[1:].std() < counts[1:].mean() * 0.15

    def test_hotspot_concentration(self):
        pattern = HotspotTraffic(8, hotspot=2, fraction=0.5)
        rng = np.random.default_rng(2)
        draws = [pattern.destination(0, rng) for _ in range(4000)]
        hot_fraction = draws.count(2) / len(draws)
        # 0.5 direct + ~1/7 of the uniform remainder.
        assert hot_fraction == pytest.approx(0.5 + 0.5 / 7, abs=0.05)

    def test_hotspot_source_is_hotspot(self):
        pattern = HotspotTraffic(8, hotspot=2, fraction=0.5)
        draws = [pattern.destination(2, RNG) for _ in range(200)]
        assert 2 not in draws

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(8, hotspot=9)
        with pytest.raises(ValueError):
            HotspotTraffic(8, fraction=1.5)


class TestFactoryAndHarness:
    def test_make_pattern(self):
        assert make_pattern("uniform", 8).name == "uniform"
        assert make_pattern("hotspot", 8, fraction=0.2).fraction == 0.2
        with pytest.raises(ValueError):
            make_pattern("zipf", 8)

    def test_drive_pattern_produces_log(self):
        pattern = make_pattern("uniform", 8)
        log = drive_pattern(pattern, MeshConfig(), messages_per_source=20, seed=5)
        assert len(log) == 160
        assert log.mean_latency() > 0

    def test_transpose_skips_self_messages(self):
        pattern = make_pattern("transpose", 16)
        log = drive_pattern(
            pattern, MeshConfig(width=4, height=4), messages_per_source=10
        )
        # Four diagonal nodes send nothing.
        assert len(log) == (16 - 4) * 10
        for record in log:
            assert record.src != record.dst

    def test_bit_complement_latency_exceeds_uniform(self):
        # Bit-complement maximizes distance on the mesh.
        config = MeshConfig(width=4, height=4)
        uniform_log = drive_pattern(
            make_pattern("uniform", 16), config, messages_per_source=30, seed=3
        )
        complement_log = drive_pattern(
            make_pattern("bit-complement", 16), config, messages_per_source=30, seed=3
        )
        assert complement_log.mean_latency() > uniform_log.mean_latency()

    def test_harness_validation(self):
        pattern = make_pattern("uniform", 8)
        with pytest.raises(ValueError):
            drive_pattern(pattern, MeshConfig(), messages_per_source=0)
        with pytest.raises(ValueError):
            drive_pattern(pattern, MeshConfig(), mean_gap=0)
        with pytest.raises(ValueError):
            drive_pattern(pattern, MeshConfig(width=4, height=4))

    def test_pattern_needs_two_nodes(self):
        with pytest.raises(ValueError):
            UniformTraffic(1)


class TestNewPatterns:
    def test_tornado_2d(self):
        from repro.mesh import TornadoTraffic

        # 4x4: each coordinate moves by ceil(4/2)-1 = 1 in every dim.
        pattern = TornadoTraffic(16, dims=(4, 4))
        assert pattern.destination(0, RNG) == 5  # (0,0) -> (1,1)
        assert pattern.destination(15, RNG) == 0  # (3,3) -> (0,0)

    def test_tornado_defaults_to_square(self):
        from repro.mesh import TornadoTraffic

        pattern = TornadoTraffic(16)
        assert pattern.destination(0, RNG) == TornadoTraffic(16, dims=(4, 4)).destination(0, RNG)

    def test_tornado_is_a_bijection(self):
        from repro.mesh import TornadoTraffic

        pattern = TornadoTraffic(24, dims=(6, 4))
        dests = {pattern.destination(s, RNG) for s in range(24)}
        assert dests == set(range(24))

    def test_neighbor_exchange(self):
        from repro.mesh import NeighborTraffic

        pattern = NeighborTraffic(16, dims=(4, 4))
        assert pattern.destination(0, RNG) == 1
        assert pattern.destination(3, RNG) == 0  # wraps the first axis

    def test_shuffle_rotates_bits(self):
        from repro.mesh import ShuffleTraffic

        pattern = ShuffleTraffic(8)
        # 0b001 -> 0b010, 0b100 -> 0b001, 0b110 -> 0b101
        assert pattern.destination(1, RNG) == 2
        assert pattern.destination(4, RNG) == 1
        assert pattern.destination(6, RNG) == 5

    def test_shuffle_needs_power_of_two(self):
        from repro.mesh import ShuffleTraffic

        with pytest.raises(ValueError):
            ShuffleTraffic(12)

    def test_transpose_palindromic_dims(self):
        pattern = TransposeTraffic(16, dims=(2, 4, 2))
        dests = {pattern.destination(s, RNG) for s in range(16)}
        assert dests == set(range(16))

    def test_transpose_rejects_non_palindromic(self):
        with pytest.raises(ValueError, match="palindromic"):
            TransposeTraffic(8, dims=(4, 2))

    def test_dims_must_match_node_count(self):
        from repro.mesh import TornadoTraffic

        with pytest.raises(ValueError):
            TornadoTraffic(16, dims=(3, 4))


class TestPatternRegistry:
    def test_registered_names(self):
        from repro.mesh import registered_patterns

        names = registered_patterns()
        for expected in ("uniform", "tornado", "transpose", "hotspot",
                         "neighbor", "shuffle", "bit-complement"):
            assert expected in names
        assert names == tuple(sorted(names))

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="registered"):
            make_pattern("zipf", 16)

    def test_unknown_kwarg_names_accepted(self):
        with pytest.raises(ValueError, match="accepted"):
            make_pattern("hotspot", 16, temperature=3)

    def test_register_pattern(self):
        from repro.mesh import register_pattern
        from repro.mesh.patterns import PATTERNS

        register_pattern("everyone-to-zero", lambda num_nodes: UniformTraffic(num_nodes))
        try:
            assert make_pattern("everyone-to-zero", 8).num_nodes == 8
        finally:
            PATTERNS.pop("everyone-to-zero", None)

    def test_pattern_for_config_injects_dims(self):
        from repro.mesh import pattern_for_config

        cfg = MeshConfig(spec="2x8:mesh")
        pattern = pattern_for_config("tornado", cfg)
        # (0,0) -> (0, 3) on the 2x8 grid, not the square default.
        assert pattern.destination(0, RNG) == 6

    def test_pattern_for_config_hierarchical_falls_back(self):
        from repro.mesh import pattern_for_config

        cfg = MeshConfig.parse("chiplet(4x4,hubs=4)")
        pattern = pattern_for_config("transpose", cfg)
        assert pattern.num_nodes == 64


class TestHotspotSelfSend:
    def test_hotspot_source_never_sends_to_itself(self):
        # The hotspot node itself draws from the uniform background; a
        # redraw must kick in whenever that lands on the source.
        pattern = HotspotTraffic(8, hotspot=3, fraction=0.9)
        rng = np.random.default_rng(123)
        for _ in range(500):
            assert pattern.destination(3, rng) != 3

    def test_all_sources_never_self_send(self):
        pattern = HotspotTraffic(4, hotspot=0, fraction=0.5)
        rng = np.random.default_rng(7)
        for src in range(4):
            for _ in range(200):
                assert pattern.destination(src, rng) != src
