"""Tests for the torus and hypercube topology extensions + virtual channels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import (
    HypercubeTopology,
    MeshConfig,
    MeshNetwork,
    MeshTopology,
    NetworkMessage,
    TorusTopology,
    make_topology,
)
from repro.simkernel import Simulator


class TestTorusTopology:
    def test_neighbors_wraparound(self):
        torus = TorusTopology(4, 4)
        assert sorted(torus.neighbors(0)) == [1, 3, 4, 12]

    def test_hops_take_shorter_direction(self):
        torus = TorusTopology(4, 4)
        # 0 -> 3: one wrap hop west instead of 3 east.
        assert torus.hops(0, 3) == 1
        assert torus.hops(0, 15) == 2  # wrap both dimensions

    def test_route_length_matches_hops(self):
        torus = TorusTopology(4, 3)
        for src in range(torus.num_nodes):
            for dst in range(torus.num_nodes):
                assert len(torus.route(src, dst)) == torus.hops(src, dst)

    def test_route_is_connected(self):
        torus = TorusTopology(5, 4)
        for src in (0, 7, 13):
            for dst in range(torus.num_nodes):
                node = src
                for hop in torus.route(src, dst):
                    assert hop.src == node
                    assert hop.dst in torus.neighbors(node) or hop.dst == node
                    node = hop.dst
                assert node == dst

    def test_wrap_hop_switches_vclass(self):
        torus = TorusTopology(4, 1)
        # 0 -> 3 goes west through the wrap channel (0, 3).
        route = torus.route(1, 3)
        # 1 -> 0 (class 0), 0 -> 3 wrap (class 0), after which nothing.
        assert [h.vclass for h in route] == [0, 0]
        # 1 -> 2 -> 3 has no wrap: all class 0.
        route_east = torus.route(0, 2)
        assert all(h.vclass == 0 for h in route_east)

    def test_dateline_classes_after_wrap(self):
        torus = TorusTopology(5, 1)
        # 4 -> 1 shortest is east through the wrap: 4->0 (wrap), 0->1.
        route = torus.route(4, 1)
        assert [(h.src, h.dst) for h in route] == [(4, 0), (0, 1)]
        assert route[0].vclass == 0          # the wrap hop itself
        assert route[1].vclass == 1          # after the dateline

    def test_average_distance_below_mesh(self):
        mesh = MeshTopology(4, 4)
        torus = TorusTopology(4, 4)
        assert torus.average_distance() < mesh.average_distance()

    def test_requires_two_vclasses(self):
        with pytest.raises(ValueError):
            MeshConfig(topology="torus", virtual_channels=1)
        MeshConfig(topology="torus", virtual_channels=2)  # ok


class TestHypercubeTopology:
    def test_for_nodes(self):
        cube = HypercubeTopology.for_nodes(8)
        assert cube.dimension == 3
        assert cube.num_nodes == 8

    def test_for_nodes_rejects_non_power(self):
        with pytest.raises(ValueError):
            HypercubeTopology.for_nodes(6)

    def test_neighbors_are_bit_flips(self):
        cube = HypercubeTopology(3)
        assert sorted(cube.neighbors(0)) == [1, 2, 4]
        assert sorted(cube.neighbors(5)) == [1, 4, 7]

    def test_hops_hamming(self):
        cube = HypercubeTopology(4)
        assert cube.hops(0b0000, 0b1111) == 4
        assert cube.hops(0b1010, 0b1010) == 0

    def test_ecube_route_fixes_low_bits_first(self):
        cube = HypercubeTopology(3)
        route = cube.route(0b000, 0b101)
        assert [(h.src, h.dst) for h in route] == [(0b000, 0b001), (0b001, 0b101)]

    def test_channel_count(self):
        cube = HypercubeTopology(3)
        assert len(list(cube.channels())) == 8 * 3

    def test_average_distance(self):
        # d-cube average Hamming distance over ordered pairs:
        # d * 2^(d-1) * 2^d / (2^d * (2^d - 1)).
        cube = HypercubeTopology(3)
        expected = 3 * 4 * 8 / (8 * 7)
        assert cube.average_distance() == pytest.approx(expected)


class TestMakeTopology:
    def test_by_name(self):
        assert make_topology("mesh", 4, 2).name == "mesh"
        assert make_topology("torus", 4, 2).name == "torus"
        assert make_topology("hypercube", 4, 2).name == "hypercube"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_topology("ring", 4, 2)

    def test_hypercube_node_count_enforced(self):
        with pytest.raises(ValueError):
            MeshConfig(width=3, height=2, topology="hypercube")


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(["mesh", "torus", "hypercube"]),
    data=st.data(),
)
def test_route_property_connected_and_minimal(name, data):
    topo = make_topology(name, 4, 2)
    src = data.draw(st.integers(0, topo.num_nodes - 1))
    dst = data.draw(st.integers(0, topo.num_nodes - 1))
    route = topo.route(src, dst)
    assert len(route) == topo.hops(src, dst)
    node = src
    for hop in route:
        assert hop.src == node
        node = hop.dst
    assert node == dst


class TestNetworkOnAlternativeTopologies:
    def run_traffic(self, config, pairs):
        sim = Simulator()
        net = MeshNetwork(sim, config)
        events = [
            net.inject(NetworkMessage(src=s, dst=d, length_bytes=64)) for s, d in pairs
        ]
        sim.run()
        return net, [e.value for e in events]

    def test_torus_delivers_under_load(self):
        config = MeshConfig(width=4, height=2, topology="torus", virtual_channels=2)
        pairs = [(s, (s + 3) % 8) for s in range(8)] * 5
        net, records = self.run_traffic(config, pairs)
        assert len(net.log) == 40
        assert all(r.deliver_time > 0 for r in records)

    def test_torus_shortens_long_routes(self):
        mesh_cfg = MeshConfig(width=4, height=2, topology="mesh")
        torus_cfg = MeshConfig(width=4, height=2, topology="torus", virtual_channels=2)
        _, mesh_records = self.run_traffic(mesh_cfg, [(0, 3)])
        _, torus_records = self.run_traffic(torus_cfg, [(0, 3)])
        assert torus_records[0].hops < mesh_records[0].hops

    def test_hypercube_delivers(self):
        config = MeshConfig(width=4, height=2, topology="hypercube")
        net, records = self.run_traffic(config, [(0, 7), (5, 2)])
        assert records[0].hops == 3  # Hamming(0, 7)
        assert records[1].hops == 3  # Hamming(5, 2)

    def test_virtual_channels_reduce_blocking(self):
        # Cross traffic converging on channel (2, 3): with 2 lanes,
        # worms from different sources can overlap on the shared link.
        base = dict(width=4, height=1, topology="mesh")
        pairs = [(0, 3), (1, 3), (2, 3), (0, 3), (1, 3), (2, 3)]
        single, _ = self.run_traffic(MeshConfig(**base, virtual_channels=1), pairs)
        double, _ = self.run_traffic(MeshConfig(**base, virtual_channels=2), pairs)
        assert double.log.mean_contention() < single.log.mean_contention()

    def test_vc_lane_lookup(self):
        config = MeshConfig(width=4, height=1, virtual_channels=2)
        sim = Simulator()
        net = MeshNetwork(sim, config)
        assert net.channel(0, 1, lane=0) is not net.channel(0, 1, lane=1)
        with pytest.raises(ValueError):
            net.channel(0, 1, lane=5)
