"""Unit tests for mesh topology and XY routing."""

import pytest
from hypothesis import given, strategies as st

from repro.mesh import MeshConfig, MeshTopology, xy_route
from repro.mesh.routing import route_hops


class TestTopology:
    def test_coordinates_row_major(self):
        topo = MeshTopology(4, 2)
        assert topo.coordinates(0) == (0, 0)
        assert topo.coordinates(3) == (3, 0)
        assert topo.coordinates(4) == (0, 1)
        assert topo.coordinates(7) == (3, 1)

    def test_node_at_inverts_coordinates(self):
        topo = MeshTopology(5, 3)
        for node in range(topo.num_nodes):
            assert topo.node_at(*topo.coordinates(node)) == node

    def test_corner_neighbors(self):
        topo = MeshTopology(3, 3)
        assert sorted(topo.neighbors(0)) == [1, 3]
        assert sorted(topo.neighbors(8)) == [5, 7]

    def test_center_neighbors(self):
        topo = MeshTopology(3, 3)
        assert sorted(topo.neighbors(4)) == [1, 3, 5, 7]

    def test_hops_manhattan(self):
        topo = MeshTopology(4, 4)
        assert topo.hops(0, 15) == 6
        assert topo.hops(5, 5) == 0

    def test_channel_count(self):
        # 2D mesh has 2*(w-1)*h + 2*w*(h-1) directed channels.
        topo = MeshTopology(4, 2)
        channels = list(topo.channels())
        assert len(channels) == 2 * 3 * 2 + 2 * 4 * 1
        assert len(set(channels)) == len(channels)

    def test_average_distance_single_node(self):
        assert MeshTopology(1, 1).average_distance() == 0.0

    def test_average_distance_known_value(self):
        # 2x1 mesh: the only pair is distance 1.
        assert MeshTopology(2, 1).average_distance() == 1.0

    def test_bad_node_rejected(self):
        topo = MeshTopology(2, 2)
        with pytest.raises(ValueError):
            topo.coordinates(4)
        with pytest.raises(ValueError):
            topo.node_at(2, 0)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 3)


class TestXYRouting:
    def test_same_node_empty_path(self):
        topo = MeshTopology(4, 4)
        assert xy_route(topo, 5, 5) == []

    def test_x_then_y(self):
        topo = MeshTopology(4, 4)
        path = xy_route(topo, 0, 15)
        # First moves must be along X (east), then along Y (south).
        assert path[:3] == [(0, 1), (1, 2), (2, 3)]
        assert path[3:] == [(3, 7), (7, 11), (11, 15)]

    def test_westward_and_northward(self):
        topo = MeshTopology(4, 4)
        path = xy_route(topo, 15, 0)
        assert path[:3] == [(15, 14), (14, 13), (13, 12)]
        assert path[3:] == [(12, 8), (8, 4), (4, 0)]

    def test_path_length_is_manhattan(self):
        topo = MeshTopology(5, 5)
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                assert len(xy_route(topo, src, dst)) == topo.hops(src, dst)
                assert route_hops(topo, src, dst) == topo.hops(src, dst)

    @given(
        width=st.integers(1, 6),
        height=st.integers(1, 6),
        data=st.data(),
    )
    def test_path_is_connected_and_valid(self, width, height, data):
        topo = MeshTopology(width, height)
        src = data.draw(st.integers(0, topo.num_nodes - 1))
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        path = xy_route(topo, src, dst)
        node = src
        for u, v in path:
            assert u == node
            assert v in topo.neighbors(u)
            node = v
        assert node == dst


class TestMeshConfig:
    def test_defaults(self):
        cfg = MeshConfig()
        assert cfg.num_nodes == 8

    def test_flits_for(self):
        cfg = MeshConfig(flit_bytes=8, header_flits=1)
        assert cfg.flits_for(0) == 1
        assert cfg.flits_for(1) == 2
        assert cfg.flits_for(8) == 2
        assert cfg.flits_for(9) == 3
        assert cfg.flits_for(64) == 9

    def test_zero_load_latency_formula(self):
        cfg = MeshConfig(
            flit_bytes=8,
            header_flits=1,
            channel_time=1.0,
            routing_time=1.0,
            injection_time=1.0,
            ejection_time=1.0,
        )
        # 2 hops, 16 bytes -> 3 flits: 1 + 2*(1+1) + 2*1 + 1 = 8
        assert cfg.zero_load_latency(2, 16) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshConfig(width=0)
        with pytest.raises(ValueError):
            MeshConfig(flit_bytes=0)
        with pytest.raises(ValueError):
            MeshConfig(channel_time=-1.0)
        cfg = MeshConfig()
        with pytest.raises(ValueError):
            cfg.flits_for(-1)
        with pytest.raises(ValueError):
            cfg.zero_load_latency(-1, 8)
