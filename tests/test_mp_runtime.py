"""Tests for the SP2 cost model, MPI-like runtime and collectives."""

import numpy as np
import pytest

from repro.mp import MessagePassingRuntime, SP2Config
from repro.mp.sp2 import SP2_ALPHA_US, SP2_BETA_US_PER_BYTE


class TestSP2Config:
    def test_software_overhead_matches_paper_model(self):
        sp2 = SP2Config()
        for x in (0, 1, 64, 1024, 65536):
            assert sp2.software_overhead(x) == pytest.approx(
                SP2_BETA_US_PER_BYTE * x + SP2_ALPHA_US
            )

    def test_end_to_end_includes_wire(self):
        sp2 = SP2Config()
        assert sp2.end_to_end(100) > sp2.software_overhead(100)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SP2Config().send_overhead(-1)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            SP2Config(sender_alpha=-1)
        with pytest.raises(ValueError):
            SP2Config(switch_bandwidth=0)


class TestPointToPoint:
    def test_send_recv_delivers_payload(self):
        runtime = MessagePassingRuntime(num_ranks=2)
        got = []

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, {"x": 42}, nbytes=100)
            else:
                payload = yield from comm.recv(0)
                got.append(payload)

        runtime.run(body)
        assert got == [{"x": 42}]

    def test_recv_before_send_blocks(self):
        runtime = MessagePassingRuntime(num_ranks=2)
        times = []

        def body(comm):
            if comm.rank == 1:
                payload = yield from comm.recv(0)
                times.append((comm.now, payload))
            else:
                yield from comm.compute(500.0)
                yield from comm.send(1, "late", nbytes=8)

        runtime.run(body)
        assert times[0][0] > 500.0
        assert times[0][1] == "late"

    def test_tag_matching(self):
        runtime = MessagePassingRuntime(num_ranks=2)
        got = []

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, "a", nbytes=8, tag=1)
                yield from comm.send(1, "b", nbytes=8, tag=2)
            else:
                second = yield from comm.recv(0, tag=2)
                first = yield from comm.recv(0, tag=1)
                got.append((first, second))

        runtime.run(body)
        assert got == [("a", "b")]

    def test_message_cost_matches_model(self):
        sp2 = SP2Config()
        runtime = MessagePassingRuntime(num_ranks=2, sp2=sp2)
        done = []

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, None, nbytes=1000)
            else:
                yield from comm.recv(0)
                done.append(comm.now)

        runtime.run(body)
        assert done[0] == pytest.approx(sp2.end_to_end(1000))

    def test_send_to_self_rejected(self):
        runtime = MessagePassingRuntime(num_ranks=2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(0, None, nbytes=8)

        with pytest.raises(ValueError):
            runtime.run(body)

    def test_unmatched_recv_detected(self):
        runtime = MessagePassingRuntime(num_ranks=2)

        def body(comm):
            if comm.rank == 1:
                yield from comm.recv(0)

        with pytest.raises(RuntimeError, match="never finished"):
            runtime.run(body)

    def test_trace_records_sends(self):
        runtime = MessagePassingRuntime(num_ranks=2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, None, nbytes=64, kind="halo")
            else:
                yield from comm.recv(0)

        runtime.run(body)
        assert len(runtime.trace) == 1
        event = runtime.trace.events[0]
        assert (event.src, event.dst, event.length_bytes, event.kind) == (0, 1, 64, "halo")


class TestCollectives:
    def run_collective(self, body, ranks=4):
        runtime = MessagePassingRuntime(num_ranks=ranks)
        runtime.run(body)
        return runtime

    def test_barrier_synchronizes(self):
        after = []

        def body(comm):
            yield from comm.compute(comm.rank * 100.0)
            yield from comm.barrier()
            after.append(comm.now)

        self.run_collective(body)
        assert min(after) >= 300.0

    def test_bcast_distributes_root_value(self):
        got = []

        def body(comm):
            value = yield from comm.bcast(0, comm.rank * 10 if comm.rank == 0 else None, 8)
            got.append(value)

        self.run_collective(body)
        assert got == [0, 0, 0, 0]

    def test_reduce_sums_in_rank_order(self):
        got = []

        def body(comm):
            result = yield from comm.reduce(0, comm.rank + 1, 8, lambda a, b: a + b)
            if comm.rank == 0:
                got.append(result)

        self.run_collective(body)
        assert got == [10]  # 1+2+3+4

    def test_allreduce_gives_everyone_the_result(self):
        got = []

        def body(comm):
            result = yield from comm.allreduce(comm.rank + 1, 8, lambda a, b: a + b)
            got.append(result)

        self.run_collective(body)
        assert got == [10, 10, 10, 10]

    def test_alltoall_exchanges_personalized_chunks(self):
        got = {}

        def body(comm):
            chunks = [f"{comm.rank}->{q}" for q in range(comm.size)]
            received = yield from comm.alltoall(chunks, 16)
            got[comm.rank] = received

        self.run_collective(body)
        for rank, received in got.items():
            assert received == [f"{q}->{rank}" for q in range(4)]

    def test_alltoall_wrong_chunk_count(self):
        def body(comm):
            yield from comm.alltoall(["x"], 8)

        runtime = MessagePassingRuntime(num_ranks=2)
        with pytest.raises(ValueError):
            runtime.run(body)

    def test_gather_collects_at_root(self):
        got = []

        def body(comm):
            values = yield from comm.gather(2, comm.rank * comm.rank, 8)
            if comm.rank == 2:
                got.append(values)

        self.run_collective(body)
        assert got == [[0, 1, 4, 9]]

    def test_collective_traffic_is_root_centric(self):
        def body(comm):
            yield from comm.allreduce(1.0, 8, lambda a, b: a + b)

        runtime = self.run_collective(body, ranks=8)
        matrix = np.zeros((8, 8))
        for e in runtime.trace:
            matrix[e.src, e.dst] += 1
        # Every non-root's messages go only to rank 0 and vice versa.
        for r in range(1, 8):
            assert matrix[r, 0] == 1
            assert matrix[0, r] == 1
            assert matrix[r, 1:].sum() == 0


class TestRuntimeLifecycle:
    def test_run_twice_rejected(self):
        runtime = MessagePassingRuntime(num_ranks=2)

        def body(comm):
            return
            yield  # pragma: no cover

        runtime.run(body)
        with pytest.raises(RuntimeError):
            runtime.run(body)

    def test_bad_rank_count(self):
        with pytest.raises(ValueError):
            MessagePassingRuntime(num_ranks=0)

    def test_negative_compute_rejected(self):
        runtime = MessagePassingRuntime(num_ranks=1)

        def body(comm):
            yield from comm.compute(-1.0)

        with pytest.raises(ValueError):
            runtime.run(body)
