"""Columnar NetworkLog equivalence, persistence, and validation tests.

The columnar log must be *bit-identical* to the legacy row-backed
implementation (kept as the oracle in :mod:`repro.mesh.netlog_rows`)
on every derived view -- the hypothesis property below drives both
with randomized logs, and explicit cases cover empty, single-record,
and single-source logs.  Persistence tests assert CSV <-> npz round
trips reproduce the exact records and views; validation tests cover
the endpoint checks and the CSV/npz format diagnostics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.netlog import (
    LogSummary,
    NetLogFormatError,
    NetLogRecord,
    NetworkLog,
)
from repro.mesh.netlog_rows import RowNetworkLog

NUM_NODES = 8
KINDS = ("p2p", "coherence", "reply")


def make_record(msg_id, src, dst, nbytes=8, kind="p2p", inject=0.0, latency=5.0,
                contention=0.5, hops=2):
    return NetLogRecord(
        msg_id=msg_id,
        src=src,
        dst=dst,
        length_bytes=nbytes,
        kind=kind,
        inject_time=inject,
        start_time=inject + 1.0,
        deliver_time=inject + latency,
        contention=contention,
        hops=hops,
    )


record_tuples = st.tuples(
    st.integers(0, NUM_NODES - 1),                      # src
    st.integers(0, NUM_NODES - 1),                      # dst
    st.sampled_from((8, 16, 64, 256)),                  # length
    st.sampled_from(KINDS),                             # kind
    st.floats(0.0, 1e6, allow_nan=False),               # inject
    st.floats(0.0, 1e4, allow_nan=False),               # latency
    st.floats(0.0, 1e3, allow_nan=False),               # contention
)


def build_logs(rows):
    """The same records into a columnar log and the row oracle."""
    columnar, reference = NetworkLog(), RowNetworkLog()
    for i, (src, dst, nbytes, kind, inject, latency, contention) in enumerate(rows):
        record = make_record(
            i, src, dst, nbytes=nbytes, kind=kind, inject=inject,
            latency=latency, contention=contention,
        )
        columnar.add(record)
        reference.add(record)
    return columnar, reference


def assert_views_identical(columnar, reference):
    """Every derived view of both logs must be bit-identical."""
    assert len(columnar) == len(reference)
    assert columnar.records == tuple(reference.records)
    assert list(columnar) == list(reference)
    assert columnar.sources() == reference.sources()
    assert columnar.kinds() == reference.kinds()
    assert columnar.length_counts() == reference.length_counts()
    assert columnar.total_bytes() == reference.total_bytes()
    assert columnar.span() == reference.span()
    assert columnar.injection_span() == reference.injection_span()
    assert columnar.mean_latency() == reference.mean_latency()
    assert columnar.mean_contention() == reference.mean_contention()
    assert columnar.offered_rate() == reference.offered_rate()
    assert columnar.throughput() == reference.throughput()

    def identical(a, b):
        assert a.dtype == b.dtype and a.shape == b.shape
        assert np.array_equal(a, b)

    identical(columnar.injection_times(), reference.injection_times())
    identical(columnar.interarrival_times(), reference.interarrival_times())
    identical(columnar.message_lengths(), reference.message_lengths())
    identical(
        columnar.destination_count_matrix(NUM_NODES),
        reference.destination_count_matrix(NUM_NODES),
    )
    identical(
        columnar.destination_fraction_matrix(NUM_NODES),
        reference.destination_fraction_matrix(NUM_NODES),
    )
    identical(columnar.volume_matrix(NUM_NODES), reference.volume_matrix(NUM_NODES))
    identical(
        columnar.volume_fraction_matrix(NUM_NODES),
        reference.volume_fraction_matrix(NUM_NODES),
    )
    for src in list(reference.sources()) + [NUM_NODES + 3]:
        assert columnar.by_source(src) == tuple(reference.by_source(src))
        identical(columnar.injection_times(src), reference.injection_times(src))
        identical(columnar.interarrival_times(src), reference.interarrival_times(src))
        identical(columnar.message_lengths(src), reference.message_lengths(src))
        identical(
            columnar.destination_counts(src, NUM_NODES),
            reference.destination_counts(src, NUM_NODES),
        )
        identical(
            columnar.destination_fractions(src, NUM_NODES),
            reference.destination_fractions(src, NUM_NODES),
        )
        identical(
            columnar.volume_by_destination(src, NUM_NODES),
            reference.volume_by_destination(src, NUM_NODES),
        )
        identical(
            columnar.volume_fractions(src, NUM_NODES),
            reference.volume_fractions(src, NUM_NODES),
        )
    by_src = columnar.interarrivals_by_source()
    assert list(by_src) == reference.sources()
    for src, series in by_src.items():
        identical(series, reference.interarrival_times(src))


class TestRowEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(record_tuples, min_size=0, max_size=60))
    def test_every_view_matches_row_oracle(self, rows):
        columnar, reference = build_logs(rows)
        assert_views_identical(columnar, reference)

    def test_empty_log(self):
        columnar, reference = build_logs([])
        assert_views_identical(columnar, reference)
        assert columnar.summary() == LogSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_single_record_log(self):
        columnar, reference = build_logs([(2, 5, 64, "p2p", 3.0, 4.0, 0.25)])
        assert_views_identical(columnar, reference)

    def test_single_source_log(self):
        rows = [(4, dst, 16, "reply", float(t), 2.0, 0.0)
                for t, dst in enumerate([0, 3, 3, 7, 1])]
        columnar, reference = build_logs(rows)
        assert_views_identical(columnar, reference)

    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(record_tuples, min_size=1, max_size=40))
    def test_summary_matches_individual_metrics(self, rows):
        columnar, _ = build_logs(rows)
        stats = columnar.summary()
        assert stats.messages == len(columnar)
        assert stats.total_bytes == columnar.total_bytes()
        assert stats.span == columnar.span()
        assert stats.injection_span == columnar.injection_span()
        assert stats.mean_latency == columnar.mean_latency()
        assert stats.mean_contention == columnar.mean_contention()
        assert stats.offered_rate == columnar.offered_rate()
        assert stats.throughput == columnar.throughput()

    def test_interleaved_mutation_and_views(self):
        # Views rebuilt after every append must match a log built in
        # one shot (exercises the seal/invalidate cycle).
        rows = [(i % 3, (i + 1) % NUM_NODES, 16, "p2p", float(i), 1.0, 0.0)
                for i in range(10)]
        incremental = NetworkLog()
        for i, (src, dst, nbytes, kind, inject, latency, contention) in enumerate(rows):
            incremental.add(make_record(i, src, dst, nbytes=nbytes, kind=kind,
                                        inject=inject, latency=latency,
                                        contention=contention))
            incremental.interarrival_times()  # force a view mid-collection
        oneshot, _ = build_logs(rows)
        assert incremental.records == oneshot.records
        assert np.array_equal(
            incremental.destination_count_matrix(NUM_NODES),
            oneshot.destination_count_matrix(NUM_NODES),
        )


class TestEndpointValidation:
    def test_negative_destination_rejected(self):
        log = NetworkLog()
        log.add(make_record(3, src=1, dst=-2))
        with pytest.raises(ValueError, match=r"msg_id=3.*dst=-2"):
            log.destination_counts(1, NUM_NODES)

    def test_too_large_destination_rejected_with_clear_error(self):
        log = NetworkLog()
        log.add(make_record(0, src=0, dst=1))
        log.add(make_record(9, src=0, dst=NUM_NODES))
        with pytest.raises(ValueError, match=rf"msg_id=9.*dst={NUM_NODES}"):
            log.volume_by_destination(0, NUM_NODES)

    def test_matrix_validates_sources_too(self):
        log = NetworkLog()
        log.add(make_record(5, src=NUM_NODES + 1, dst=0))
        with pytest.raises(ValueError, match=r"msg_id=5.*src"):
            log.destination_count_matrix(NUM_NODES)

    def test_valid_log_passes(self):
        log = NetworkLog()
        log.add(make_record(0, src=0, dst=NUM_NODES - 1))
        counts = log.destination_counts(0, NUM_NODES)
        assert counts[NUM_NODES - 1] == 1


class TestPersistence:
    @settings(max_examples=15, deadline=None)
    @given(rows=st.lists(record_tuples, min_size=0, max_size=30))
    def test_csv_npz_round_trip_equality(self, rows, tmp_path_factory):
        columnar, _ = build_logs(rows)
        tmp_path = tmp_path_factory.mktemp("netlog")
        csv_path = str(tmp_path / "log.csv")
        npz_path = str(tmp_path / "log.npz")
        columnar.write_csv(csv_path)
        columnar.write_npz(npz_path)
        from_csv = NetworkLog.read_csv(csv_path)
        from_npz = NetworkLog.read_npz(npz_path)
        assert from_csv.records == columnar.records
        assert from_npz.records == columnar.records
        assert from_npz.kinds() == columnar.kinds()
        assert np.array_equal(
            from_npz.injection_times(), columnar.injection_times()
        )
        assert np.array_equal(
            from_npz.destination_count_matrix(NUM_NODES),
            from_csv.destination_count_matrix(NUM_NODES),
        )
        assert from_npz.summary() == columnar.summary()

    def test_npz_is_binary_and_loadable_by_numpy(self, tmp_path):
        columnar, _ = build_logs([(0, 1, 64, "p2p", 1.0, 2.0, 0.5)])
        path = str(tmp_path / "log.npz")
        columnar.write_npz(path)
        with np.load(path) as data:
            assert set(data.files) >= {"msg_id", "src", "dst", "kind_vocab"}
            assert data["src"].tolist() == [0]

    def test_npz_missing_column_rejected(self, tmp_path):
        path = str(tmp_path / "broken.npz")
        np.savez_compressed(path, msg_id=np.array([1]))
        with pytest.raises(NetLogFormatError, match=r"broken\.npz.*missing"):
            NetworkLog.read_npz(path)

    def test_npz_length_mismatch_rejected(self, tmp_path):
        columnar, _ = build_logs([(0, 1, 8, "p2p", 0.0, 1.0, 0.0)] * 3)
        path = str(tmp_path / "log.npz")
        columnar.write_npz(path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["src"] = arrays["src"][:1]
        np.savez_compressed(path, **arrays)
        with pytest.raises(NetLogFormatError, match=r"'src' has 1 rows"):
            NetworkLog.read_npz(path)

    def test_npz_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(NetLogFormatError, match="junk"):
            NetworkLog.read_npz(str(path))


class TestCsvFormatErrors:
    def write_lines(self, tmp_path, lines, name="log.csv"):
        path = tmp_path / name
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def header(self):
        log, _ = build_logs([(0, 1, 8, "p2p", 0.0, 1.0, 0.0)])
        return "msg_id,src,dst,length_bytes,kind,inject_time,start_time,deliver_time,contention,hops"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(NetLogFormatError, match="empty file"):
            NetworkLog.read_csv(str(path))

    def test_missing_column_named(self, tmp_path):
        path = self.write_lines(
            tmp_path,
            ["msg_id,src,dst,length_bytes,kind", "0,1,2,8,p2p"],
        )
        with pytest.raises(NetLogFormatError, match="missing column"):
            NetworkLog.read_csv(path)

    def test_extra_column_named(self, tmp_path):
        path = self.write_lines(tmp_path, [self.header() + ",bogus"])
        with pytest.raises(NetLogFormatError, match=r"unexpected column\(s\) \['bogus'\]"):
            NetworkLog.read_csv(path)

    def test_truncated_row_names_row_number(self, tmp_path):
        path = self.write_lines(
            tmp_path,
            [
                self.header(),
                "0,1,2,8,p2p,0.0,1.0,5.0,0.5,2",
                "1,1,2,8",  # truncated mid-row
            ],
        )
        with pytest.raises(NetLogFormatError, match="row 3.*truncated"):
            NetworkLog.read_csv(path)

    def test_unparsable_value_names_row_number(self, tmp_path):
        path = self.write_lines(
            tmp_path,
            [
                self.header(),
                "0,1,2,8,p2p,0.0,1.0,5.0,0.5,2",
                "nope,1,2,8,p2p,0.0,1.0,5.0,0.5,2",
            ],
        )
        with pytest.raises(NetLogFormatError, match="row 3"):
            NetworkLog.read_csv(path)

    def test_format_error_is_a_value_error(self, tmp_path):
        # The CLI catches ValueError; the format error must stay inside
        # that hierarchy so `repro doctor broken.csv` exits 2, not a
        # traceback.
        assert issubclass(NetLogFormatError, ValueError)

    def test_clean_round_trip_still_works(self, tmp_path):
        columnar, _ = build_logs(
            [(0, 1, 8, "p2p", 0.25, 1.5, 0.125), (3, 0, 16, "reply", 2.0, 1.0, 0.0)]
        )
        path = str(tmp_path / "log.csv")
        columnar.write_csv(path)
        assert NetworkLog.read_csv(path).records == columnar.records
