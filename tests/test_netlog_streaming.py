"""Out-of-core streaming NetworkLog: equivalence, determinism, edges.

The in-memory :class:`NetworkLog` is the correctness oracle.  The
hypothesis property drives a :class:`StreamingNetworkLog` (with a
small window forcing multiple spilled segments) and the oracle with
the same records and asserts every integer-valued derived view is
*exact* (counts, matrices, tallies, kinds, sources) and every float
summary agrees to documented round-off (the streaming side folds
per-chunk partial sums; the oracle uses numpy's pairwise summation).

Determinism is the second contract: the same records through the live
spill path, ``summarize_csv``, ``summarize_npz``, the manifest's
stored summary, and a re-fold of the manifest's per-segment partials
must all produce *bit-identical* ``as_dict()`` documents whenever the
window boundaries align.

Edge cases from the issue checklist: empty spills, window boundaries
landing exactly on the record count, single-record segments, merges of
zero partials, and truncated/missing segment shards raising
:class:`NetLogFormatError` naming the offending shard.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.options import RunOptions
from repro.mesh.netlog import (
    NetLogFormatError,
    NetLogRecord,
    NetworkLog,
)
from repro.mesh.netlog_stream import (
    DEFAULT_WINDOW,
    StreamingNetworkLog,
    StreamingSummary,
    iter_segments,
    materialize_manifest,
    merge_manifest_partials,
    read_manifest,
    summarize_csv,
    summarize_npz,
    summary_from_manifest,
)
from repro.stats.streaming import (
    P2Quantile,
    QuantileDigest,
    StreamingHistogram,
    StreamingMoments,
    geometric_edges,
)

NUM_NODES = 8
KINDS = ("p2p", "coherence", "reply")


def make_record(msg_id, src, dst, nbytes=8, kind="p2p", inject=0.0, latency=5.0,
                contention=0.5, hops=2):
    return NetLogRecord(
        msg_id=msg_id,
        src=src,
        dst=dst,
        length_bytes=nbytes,
        kind=kind,
        inject_time=inject,
        start_time=inject + 1.0,
        deliver_time=inject + latency,
        contention=contention,
        hops=hops,
    )


def fill(log, n, seed=7, nodes=NUM_NODES):
    """Deterministic pseudo-random records into any log-like sink."""
    rng = np.random.default_rng(seed)
    for i in range(n):
        log.add(
            make_record(
                i,
                int(rng.integers(0, nodes)),
                int(rng.integers(0, nodes)),
                nbytes=int(rng.choice((8, 64, 256))),
                kind=KINDS[int(rng.integers(0, len(KINDS)))],
                inject=float(rng.uniform(0.0, 1000.0)),
                latency=float(rng.uniform(0.1, 50.0)),
                contention=float(rng.uniform(0.0, 5.0)),
            )
        )


record_tuples = st.tuples(
    st.integers(0, NUM_NODES - 1),                      # src
    st.integers(0, NUM_NODES - 1),                      # dst
    st.sampled_from((8, 16, 64, 256)),                  # length
    st.sampled_from(KINDS),                             # kind
    st.floats(0.0, 1e6, allow_nan=False),               # inject
    st.floats(0.0, 1e4, allow_nan=False),               # latency
    st.floats(0.0, 1e3, allow_nan=False),               # contention
)


def build_pair(rows, tmp_path, window):
    """The same records into a streaming log and the in-memory oracle."""
    streaming = StreamingNetworkLog(str(tmp_path / "spill"), window=window)
    oracle = NetworkLog()
    for i, (src, dst, nbytes, kind, inject, latency, contention) in enumerate(rows):
        record = make_record(
            i, src, dst, nbytes=nbytes, kind=kind, inject=inject,
            latency=latency, contention=contention,
        )
        streaming.add(record)
        oracle.add(record)
    return streaming, oracle


def assert_matches_oracle(streaming, oracle):
    """Integer views exact; float summaries to fold round-off."""
    assert len(streaming) == len(oracle)
    assert streaming.sources() == oracle.sources()
    assert streaming.kinds() == oracle.kinds()
    assert streaming.length_counts() == oracle.length_counts()
    assert streaming.total_bytes() == oracle.total_bytes()
    np.testing.assert_array_equal(
        streaming.destination_count_matrix(NUM_NODES),
        oracle.destination_count_matrix(NUM_NODES),
    )
    np.testing.assert_array_equal(
        streaming.volume_matrix(NUM_NODES),
        oracle.volume_matrix(NUM_NODES),
    )
    np.testing.assert_allclose(
        streaming.destination_fraction_matrix(NUM_NODES),
        oracle.destination_fraction_matrix(NUM_NODES),
        rtol=1e-12,
    )
    s, o = streaming.summary(), oracle.summary()
    assert s.messages == o.messages
    assert s.total_bytes == o.total_bytes
    assert s.span == o.span  # min/max folds are exact
    assert s.injection_span == o.injection_span
    assert s.mean_latency == pytest.approx(o.mean_latency, rel=1e-9)
    assert s.mean_contention == pytest.approx(o.mean_contention, rel=1e-9)
    assert s.offered_rate == pytest.approx(o.offered_rate, rel=1e-9)
    assert s.throughput == pytest.approx(o.throughput, rel=1e-9)
    # Exact escape hatches read the segments back.
    np.testing.assert_array_equal(
        streaming.interarrival_times(), oracle.interarrival_times()
    )
    theirs = oracle.interarrivals_by_source()
    ours = streaming.interarrivals_by_source()
    assert sorted(ours) == sorted(theirs)
    for src in ours:
        np.testing.assert_array_equal(ours[src], theirs[src])


class TestOracleEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(rows=st.lists(record_tuples, min_size=0, max_size=60))
    def test_streaming_matches_in_memory(self, rows, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("stream")
        # window=7 forces multiple segments plus a partial live window
        # for most generated sizes.
        streaming, oracle = build_pair(rows, tmp_path, window=7)
        assert_matches_oracle(streaming, oracle)

    def test_materialize_round_trips_records(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=11)
        oracle = NetworkLog()
        fill(streaming, 100)
        fill(oracle, 100)
        materialized = streaming.materialize()
        assert materialized.records == oracle.records

    def test_extend_columns_splits_at_window(self, tmp_path):
        oracle = NetworkLog()
        fill(oracle, 50)
        cols, vocab = oracle.columns()
        tags = np.asarray(vocab, dtype=np.str_)[cols["kind"]]
        streaming = StreamingNetworkLog(str(tmp_path), window=8)
        streaming.extend_columns(
            msg_id=cols["msg_id"],
            src=cols["src"],
            dst=cols["dst"],
            length_bytes=cols["length_bytes"],
            kind=tags,
            inject_time=cols["inject_time"],
            start_time=cols["start_time"],
            deliver_time=cols["deliver_time"],
            contention=cols["contention"],
            hops=cols["hops"],
        )
        assert len(streaming) == 50
        assert streaming.segment_count == 50 // 8
        assert_matches_oracle(streaming, oracle)

    def test_single_kind_string_broadcast(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=3)
        streaming.extend_columns(
            msg_id=np.arange(7),
            src=np.zeros(7, dtype=np.int64),
            dst=np.ones(7, dtype=np.int64),
            length_bytes=np.full(7, 64),
            kind="p2p",
            inject_time=np.linspace(0, 6, 7),
            start_time=np.linspace(1, 7, 7),
            deliver_time=np.linspace(2, 8, 7),
            contention=np.zeros(7),
            hops=np.full(7, 2),
        )
        assert streaming.kinds() == {"p2p": 7}
        assert streaming.segment_count == 2


class TestDeterminism:
    def test_all_paths_bit_identical(self, tmp_path):
        window = 13
        streaming = StreamingNetworkLog(str(tmp_path / "spill"), window=window)
        oracle = NetworkLog()
        fill(streaming, 90)
        fill(oracle, 90)
        manifest = streaming.finalize()
        csv_path = str(tmp_path / "log.csv")
        npz_path = str(tmp_path / "log.npz")
        oracle.write_csv(csv_path)
        oracle.write_npz(npz_path)

        live = streaming.streaming_summary().as_dict()
        stored = summary_from_manifest(manifest).as_dict()
        refolded = merge_manifest_partials(manifest).as_dict()
        from_csv = summarize_csv(csv_path, window=window).as_dict()
        from_npz = summarize_npz(npz_path, window=window).as_dict()
        assert live == stored == refolded == from_csv == from_npz

    def test_merge_is_deterministic(self, tmp_path):
        logs = []
        for seed in (1, 2, 3):
            log = NetworkLog()
            fill(log, 20, seed=seed)
            logs.append(log)
        parts_a = [StreamingSummary.from_log(log) for log in logs]
        parts_b = [StreamingSummary.from_log(log) for log in logs]
        merged_a = StreamingSummary.merged(parts_a)
        merged_b = StreamingSummary.merged(parts_b)
        assert merged_a.as_dict() == merged_b.as_dict()

    def test_dict_round_trip_bit_exact(self, tmp_path):
        log = NetworkLog()
        fill(log, 40)
        summary = StreamingSummary.from_log(log)
        doc = json.loads(json.dumps(summary.as_dict()))
        restored = StreamingSummary.from_dict(doc)
        assert restored.as_dict() == summary.as_dict()
        assert restored.summary() == summary.summary()

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError):
            StreamingSummary.from_dict({"messages": 3})


class TestEdgeCases:
    def test_empty_log_spill_and_merge(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=4)
        manifest = streaming.finalize()
        assert streaming.segment_count == 0
        doc = read_manifest(manifest)
        assert doc["segments"] == []
        assert doc["records"] == 0
        summary = summary_from_manifest(manifest)
        assert summary.summary().messages == 0
        assert summary.summary() == NetworkLog().summary()
        assert list(iter_segments(manifest)) == []
        assert len(materialize_manifest(manifest)) == 0

    def test_merge_of_zero_partials(self):
        merged = StreamingSummary.merged([])
        assert merged.messages == 0
        assert merged.summary() == NetworkLog().summary()

    def test_window_boundary_exactly_at_record_count(self, tmp_path):
        # records == k * window: the live window is empty at finalize;
        # no trailing zero-record segment may be written.
        streaming = StreamingNetworkLog(str(tmp_path), window=10)
        oracle = NetworkLog()
        fill(streaming, 30)
        fill(oracle, 30)
        assert streaming.segment_count == 3
        manifest = streaming.finalize()
        assert streaming.segment_count == 3  # finalize added nothing
        doc = read_manifest(manifest)
        assert [entry["records"] for entry in doc["segments"]] == [10, 10, 10]
        assert_matches_oracle(streaming, oracle)

    def test_single_record_segments(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=1)
        oracle = NetworkLog()
        fill(streaming, 5)
        fill(oracle, 5)
        assert streaming.segment_count == 5
        assert len(streaming._window_log) == 0
        assert_matches_oracle(streaming, oracle)

    def test_window_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="window"):
            StreamingNetworkLog(str(tmp_path), window=0)

    def test_finalize_idempotent_and_extendable(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=4)
        fill(streaming, 6)
        first = streaming.finalize()
        assert streaming.finalize() == first
        doc1 = read_manifest(first)
        fill(streaming, 3, seed=99)
        streaming.finalize()
        doc2 = read_manifest(first)
        assert doc2["records"] == 9
        assert len(doc2["segments"]) > len(doc1["segments"])

    def test_missing_shard_named_in_error(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=3)
        fill(streaming, 9)
        manifest = streaming.finalize()
        victim = os.path.join(str(tmp_path), "netlog.part-001.npz")
        os.unlink(victim)
        with pytest.raises(NetLogFormatError, match="part-001"):
            list(iter_segments(manifest))

    def test_truncated_shard_rejected(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=3)
        fill(streaming, 6)
        manifest = streaming.finalize()
        victim = os.path.join(str(tmp_path), "netlog.part-000.npz")
        with open(victim, "r+b") as handle:
            handle.truncate(20)  # torn write
        with pytest.raises(NetLogFormatError, match="part-000"):
            list(iter_segments(manifest))

    def test_record_count_mismatch_rejected(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=3)
        fill(streaming, 6)
        manifest = streaming.finalize()
        doc = read_manifest(manifest)
        doc["segments"][0]["records"] = 999
        with open(manifest, "w") as handle:
            json.dump(doc, handle)
        with pytest.raises(NetLogFormatError, match="999"):
            list(iter_segments(manifest))

    def test_not_a_manifest_rejected(self, tmp_path):
        path = str(tmp_path / "other.manifest.json")
        with open(path, "w") as handle:
            json.dump({"kind": "something-else"}, handle)
        with pytest.raises(NetLogFormatError, match="not a netlog spill manifest"):
            read_manifest(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = str(tmp_path / "future.manifest.json")
        with open(path, "w") as handle:
            json.dump({"kind": "netlog-spill", "schema": 999, "segments": []}, handle)
        with pytest.raises(NetLogFormatError, match="999"):
            read_manifest(path)

    def test_csv_npz_segment_round_trip(self, tmp_path):
        # streaming -> CSV -> oracle -> npz -> oracle: the records
        # survive every export unchanged.
        streaming = StreamingNetworkLog(str(tmp_path / "spill"), window=7)
        fill(streaming, 40)
        csv_path = str(tmp_path / "out.csv")
        npz_path = str(tmp_path / "out.npz")
        streaming.write_csv(csv_path)
        from_csv = NetworkLog.read_csv(csv_path)
        from_csv.write_npz(npz_path)
        from_npz = NetworkLog.read_npz(npz_path)
        assert from_npz.records == streaming.materialize().records
        # And the O(window) summarizers over those exports agree with
        # the live fold bit-for-bit (same window).
        live = streaming.streaming_summary().as_dict()
        assert summarize_csv(csv_path, window=7).as_dict() == live
        assert summarize_npz(npz_path, window=7).as_dict() == live

    def test_per_source_lengths_need_materialize(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=4)
        fill(streaming, 10)
        with pytest.raises(ValueError, match="materialize"):
            streaming.message_lengths(src=0)
        lengths = streaming.message_lengths()
        assert lengths.size == 10

    def test_matrix_too_small_for_endpoints(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=4)
        streaming.add(make_record(0, 6, 7))
        with pytest.raises(ValueError, match="outside the 4-node network"):
            streaming.destination_count_matrix(4)


class TestRunOptionsSpill:
    def test_make_netlog_defaults_to_in_memory(self):
        assert isinstance(RunOptions().make_netlog(), NetworkLog)

    def test_make_netlog_spills_when_configured(self, tmp_path):
        options = RunOptions(log_spill=str(tmp_path), log_spill_window=5)
        log = options.make_netlog()
        assert isinstance(log, StreamingNetworkLog)
        assert log.window == 5
        assert log.directory == str(tmp_path)

    def test_default_window_when_unset(self, tmp_path):
        log = RunOptions(log_spill=str(tmp_path)).make_netlog()
        assert log.window == DEFAULT_WINDOW

    def test_window_validated(self, tmp_path):
        with pytest.raises(ValueError, match="log_spill_window"):
            RunOptions(log_spill=str(tmp_path), log_spill_window=0)

    def test_cache_keys_stable_without_spill(self):
        # The new optional fields must not leak into default as_dict()
        # (sweep cache keys hash it).
        assert "log_spill" not in RunOptions().as_dict()
        assert "log_spill_window" not in RunOptions().as_dict()
        doc = RunOptions(log_spill="/tmp/x", log_spill_window=9).as_dict()
        assert doc["log_spill"] == "/tmp/x"
        assert doc["log_spill_window"] == 9


class TestStreamingMoments:
    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 10.0, 1000)
        whole = StreamingMoments()
        whole.observe(values)
        parts = []
        for chunk in np.array_split(values, 7):
            part = StreamingMoments()
            part.observe(chunk)
            parts.append(part)
        folded = StreamingMoments()
        for part in parts:
            folded.merge(part)
        assert folded.count == whole.count
        assert folded.min_value == whole.min_value
        assert folded.max_value == whole.max_value
        assert folded.mean == pytest.approx(whole.mean, rel=1e-12)

    def test_empty_mean_is_zero(self):
        assert StreamingMoments().mean == 0.0

    def test_round_trip(self):
        moments = StreamingMoments()
        moments.observe(np.array([1.0, 2.0, 3.0]))
        doc = json.loads(json.dumps(moments.as_dict()))
        assert StreamingMoments.from_dict(doc).as_dict() == moments.as_dict()


class TestStreamingHistogram:
    def test_counts_match_numpy(self):
        edges = geometric_edges(0.1, 100.0, 20)
        rng = np.random.default_rng(5)
        values = rng.uniform(0.05, 150.0, 5000)
        hist = StreamingHistogram(edges)
        hist.observe(values)
        expected, _ = np.histogram(
            values[(values >= edges[0]) & (values < edges[-1])], bins=edges
        )
        # np.histogram closes the last bin; exclude exact-right-edge
        # hits, which the streaming histogram counts as overflow.
        np.testing.assert_array_equal(hist.counts, expected)
        assert hist.underflow == int((values < edges[0]).sum())
        assert hist.overflow == int((values >= edges[-1]).sum())
        assert hist.total == 5000

    def test_merge_requires_identical_edges(self):
        a = StreamingHistogram(geometric_edges(1, 10, 4))
        b = StreamingHistogram(geometric_edges(1, 20, 4))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_counts(self):
        edges = geometric_edges(1, 100, 8)
        a, b = StreamingHistogram(edges), StreamingHistogram(edges)
        a.observe(np.array([2.0, 3.0, 500.0]))
        b.observe(np.array([0.5, 4.0]))
        a.merge(b)
        assert a.total == 5
        assert a.underflow == 1 and a.overflow == 1


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_tracks_numpy_quantile(self, q):
        rng = np.random.default_rng(11)
        values = rng.exponential(2.0, 20000)
        est = P2Quantile(q)
        for x in values:
            est.observe(float(x))
        true = float(np.quantile(values, q))
        assert est.value() == pytest.approx(true, rel=0.05)

    def test_small_samples_exact(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.observe(x)
        assert est.value() == 3.0  # exact while buffering < 5 samples

    @pytest.mark.parametrize("q", [0.5, 0.9])
    @pytest.mark.parametrize("n", range(7))
    def test_every_small_sample_size_n0_to_n6(self, q, n):
        # Regression: value() used to interpolate the P2 markers even
        # while the estimator was still buffering its first samples,
        # returning garbage for n <= 5.  Exact up to the marker
        # threshold; once the markers take over (n > 5) the estimate
        # must at least stay inside the observed range.
        values = [float(v) for v in (7, 2, 9, 4, 1, 6)[:n]]
        est = P2Quantile(q)
        for x in values:
            est.observe(x)
        if n == 0:
            assert np.isnan(est.value())
        elif n <= 5:
            assert est.value() == float(np.quantile(values, q))
        else:
            assert min(values) <= est.value() <= max(values)

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.5).value())


class TestQuantileDigest:
    def test_merged_digest_tracks_quantiles(self):
        rng = np.random.default_rng(17)
        values = rng.exponential(2.0, 30000)
        whole = QuantileDigest()
        whole.observe(values)
        parts = []
        for chunk in np.array_split(values, 13):
            digest = QuantileDigest()
            digest.observe(chunk)
            parts.append(digest)
        folded = QuantileDigest()
        for part in parts:
            folded.merge(part)
        for q in (0.5, 0.9, 0.99):
            true = float(np.quantile(values, q))
            assert whole.quantile(q) == pytest.approx(true, rel=0.05)
            assert folded.quantile(q) == pytest.approx(true, rel=0.05)

    def test_empty_quantile_is_nan(self):
        assert np.isnan(QuantileDigest().quantile(0.5))

    def test_round_trip(self):
        digest = QuantileDigest()
        digest.observe(np.random.default_rng(1).uniform(0, 1, 1000))
        doc = json.loads(json.dumps(digest.as_dict()))
        restored = QuantileDigest.from_dict(doc)
        assert restored.quantile(0.5) == digest.quantile(0.5)

    def test_summary_percentiles_reasonable(self, tmp_path):
        streaming = StreamingNetworkLog(str(tmp_path), window=50)
        oracle = NetworkLog()
        fill(streaming, 2000)
        fill(oracle, 2000)
        latencies = (
            np.asarray(oracle.columns()[0]["deliver_time"])
            - np.asarray(oracle.columns()[0]["inject_time"])
        )
        summary = streaming.streaming_summary()
        for q in (0.5, 0.9):
            true = float(np.quantile(latencies, q))
            assert summary.latency_percentile(q) == pytest.approx(true, rel=0.1)


class TestCliSpill:
    def test_characterize_spill_then_doctor(self, tmp_path, capsys):
        from repro.cli import main

        spill = str(tmp_path / "spill")
        rc = main(
            [
                "characterize",
                "1d-fft",
                "--param",
                "n=16",
                "--log-spill",
                spill,
                "--log-spill-window",
                "50",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "activity log spilled to" in out
        manifest = os.path.join(spill, "netlog.manifest.json")
        assert os.path.exists(manifest)
        rc = main(["doctor", manifest])
        out = capsys.readouterr().out
        assert rc == 0
        assert "spilled activity log" in out
        assert "healthy" in out
