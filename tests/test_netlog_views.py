"""Tests for NetworkLog's cached per-source index and gzip persistence."""

import gzip

import numpy as np
import pytest

from repro.mesh.netlog import NetLogRecord, NetworkLog


def make_record(msg_id, src, dst, nbytes=8, inject=0.0):
    return NetLogRecord(
        msg_id=msg_id,
        src=src,
        dst=dst,
        length_bytes=nbytes,
        kind="p2p",
        inject_time=inject,
        start_time=inject + 1.0,
        deliver_time=inject + 5.0,
        contention=0.5,
        hops=2,
    )


def sample_log():
    log = NetworkLog()
    log.add(make_record(0, src=0, dst=1, nbytes=8, inject=3.0))
    log.add(make_record(1, src=0, dst=2, nbytes=32, inject=1.0))
    log.add(make_record(2, src=1, dst=0, nbytes=16, inject=2.0))
    return log


class TestSourceIndex:
    def test_by_source_sorted_by_injection(self):
        log = sample_log()
        records = log.by_source(0)
        assert [r.msg_id for r in records] == [1, 0]  # inject order 1.0, 3.0

    def test_index_reused_across_views(self):
        log = sample_log()
        log.by_source(0)
        views = log._views
        assert views is not None
        log.destination_counts(0, 4)
        log.volume_by_destination(0, 4)
        assert log._views is views  # view snapshot not rebuilt

    def test_by_source_tuple_cached_until_mutation(self):
        log = sample_log()
        first = log.by_source(0)
        assert isinstance(first, tuple)
        assert log.by_source(0) is first  # sorted once, cached
        log.add(make_record(7, src=0, dst=3, inject=0.5))
        rebuilt = log.by_source(0)
        assert rebuilt is not first
        assert [r.msg_id for r in rebuilt] == [7, 1, 0]

    def test_add_invalidates_index(self):
        log = sample_log()
        assert log.destination_counts(0, 4)[1] == 1
        log.add(make_record(3, src=0, dst=1, inject=4.0))
        assert log.destination_counts(0, 4)[1] == 2
        assert len(log.by_source(0)) == 3

    def test_extend_invalidates_index(self):
        log = sample_log()
        assert log.sources() == [0, 1]
        log.extend([make_record(4, src=3, dst=0, inject=9.0)])
        assert log.sources() == [0, 1, 3]
        assert log.volume_by_destination(3, 4)[0] == 8

    def test_views_match_bruteforce(self):
        log = sample_log()
        counts = log.destination_counts(0, 4)
        assert list(counts) == [0, 1, 1, 0]
        volume = log.volume_by_destination(0, 4)
        assert list(volume) == [0, 8, 32, 0]
        np.testing.assert_allclose(log.injection_times(0), [1.0, 3.0])
        np.testing.assert_allclose(sorted(log.message_lengths(0)), [8.0, 32.0])

    def test_unknown_source_is_empty(self):
        log = sample_log()
        assert log.by_source(9) == ()
        assert log.destination_counts(9, 4).sum() == 0


class TestGzipPersistence:
    def test_roundtrip_gz(self, tmp_path):
        log = sample_log()
        path = str(tmp_path / "log.csv.gz")
        log.write_csv(path)
        # Really gzipped on disk.
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        loaded = NetworkLog.read_csv(path)
        assert len(loaded) == len(log)
        assert [r.msg_id for r in loaded] == [r.msg_id for r in log]
        assert loaded.records[1].length_bytes == 32
        assert loaded.records[0].contention == 0.5

    def test_plain_csv_still_works(self, tmp_path):
        log = sample_log()
        path = str(tmp_path / "log.csv")
        log.write_csv(path)
        with open(path) as handle:
            assert handle.readline().startswith("msg_id")
        loaded = NetworkLog.read_csv(path)
        assert len(loaded) == 3

    def test_gz_smaller_than_plain_for_big_logs(self, tmp_path):
        log = NetworkLog()
        for i in range(2000):
            log.add(make_record(i, src=i % 8, dst=(i + 1) % 8, inject=float(i)))
        plain = tmp_path / "big.csv"
        packed = tmp_path / "big.csv.gz"
        log.write_csv(str(plain))
        log.write_csv(str(packed))
        assert packed.stat().st_size < plain.stat().st_size / 2
        assert len(NetworkLog.read_csv(str(packed))) == 2000

    def test_gzip_readable_by_stdlib(self, tmp_path):
        log = sample_log()
        path = str(tmp_path / "log.csv.gz")
        log.write_csv(path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("msg_id")
