"""Tests for the observability layer (repro.obs).

Covers the registry instruments, the null-registry zero-overhead
contract, the Chrome trace-event exporter's schema, the run-report
format, and end-to-end instrumentation of both pipeline strategies.
"""

import json

import pytest

from repro import characterize_message_passing, characterize_shared_memory, create_app
from repro.mesh import MeshConfig, MeshNetwork
from repro.obs import (
    CHANNELS_PID,
    MetricsRegistry,
    NULL_REGISTRY,
    NULL_TIMELINE,
    NullRegistry,
    RunReport,
    TimelineRecorder,
    load_metrics,
    read_trajectory,
    report_from_run,
    summarize_metrics,
)
from repro.obs.registry import TimeSeries
from repro.simkernel import Simulator, hold


class TestCounterGauge:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert reg.counter("x") is c  # create-or-get

    def test_gauge_tracks_high_water(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(10)
        g.set(4)
        assert g.value == 4
        assert g.high_water == 10
        g.add(-1)
        assert g.value == 3

    def test_as_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(2)
        d = reg.as_dict()
        assert d["c"] == {"type": "counter", "value": 7.0}
        assert d["g"]["high_water"] == 2

    def test_cross_type_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.time_series("x")


class TestHistogram:
    def test_summary_statistics(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == 4.0
        assert h.min == 1.0
        assert h.max == 10.0

    def test_buckets_partition_observations(self):
        h = MetricsRegistry().histogram("b", bounds=[1.0, 10.0])
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        d = h.as_dict()
        assert d["buckets"]["counts"] == [1, 1, 1]
        assert d["buckets"]["le"] == [1.0, 10.0, "inf"]

    def test_empty_histogram_exports(self):
        d = MetricsRegistry().histogram("empty").as_dict()
        assert d["count"] == 0
        assert "min" not in d


class TestTimeSeries:
    def test_samples_in_time_order(self):
        s = MetricsRegistry().time_series("q")
        s.sample(0.0, 1.0)
        s.sample(5.0, 3.0)
        assert s.times == [0.0, 5.0]
        assert s.values == [1.0, 3.0]

    def test_decimation_bounds_memory(self):
        s = TimeSeries("big", max_samples=16)
        for i in range(10_000):
            s.sample(float(i), float(i))
        assert len(s) < 32
        # Still spans the whole run at coarser resolution.
        assert s.times[0] < 100
        assert s.times[-1] > 5_000
        # Times stay monotone after decimation.
        assert s.times == sorted(s.times)

    def test_rejects_tiny_max_samples(self):
        with pytest.raises(ValueError):
            TimeSeries("x", max_samples=1)

    def test_latest_accessor(self):
        s = TimeSeries("q")
        assert s.latest() is None
        s.sample(1.0, 5.0)
        s.sample(2.0, 7.0)
        assert s.latest() == (2.0, 7.0)

    def test_decimation_pins_newest_sample(self):
        # [::2] keeps even indices; the newest sample must survive a
        # decimation pass even when it sits at an odd index.
        s = TimeSeries("q", max_samples=16)
        for i in range(16):  # triggers decimation on the 16th sample
            s.sample(float(i), float(i) * 10.0)
        assert s.times[-1] == 15.0
        assert s.values[-1] == 150.0
        assert s.latest() == (15.0, 150.0)
        assert s.times == sorted(s.times)

    def test_latest_survives_heavy_decimation(self):
        # Stored columns skip samples by stride, so times[-1] may lag;
        # latest() must still be the freshest offered pair.
        s = TimeSeries("q", max_samples=8)
        for i in range(1_000):
            s.sample(float(i), float(i))
        assert s.latest() == (999.0, 999.0)
        assert s.times[-1] <= 999.0


class TestNullRegistryContract:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_null_instruments_are_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a") is reg.histogram("b")
        assert reg.time_series("a") is reg.time_series("b")

    def test_null_updates_record_nothing(self):
        reg = NullRegistry()
        reg.counter("c").inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        reg.time_series("s").sample(0.0, 1.0)
        assert reg.counter("c").value == 0
        assert reg.gauge("g").high_water == 0
        assert reg.histogram("h").count == 0
        assert len(reg.time_series("s")) == 0
        assert reg.as_dict() == {}
        assert reg.names() == []

    def test_simulator_defaults_to_null(self):
        sim = Simulator()
        assert sim.obs is NULL_REGISTRY

        def body():
            yield hold(5.0)

        sim.process(body())
        sim.run()
        assert NULL_REGISTRY.as_dict() == {}


class TestRegistryExport:
    def test_write_json_load_metrics_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("net.injected").inc(12)
        reg.time_series("sim.q").sample(1.0, 2.0)
        path = str(tmp_path / "m.json")
        reg.write_json(path, extra={"app": "demo"})
        metrics = load_metrics(path)
        assert metrics["net.injected"]["value"] == 12
        assert metrics["sim.q"]["times"] == [1.0]
        with open(path) as handle:
            assert json.load(handle)["app"] == "demo"

    def test_write_json_is_atomic(self, tmp_path):
        import os

        from repro.obs.fsio import atomic_write_text

        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = str(tmp_path / "m.json")
        reg.write_json(path)
        reg.write_json(path)  # overwrite goes through rename, not truncate
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        load_metrics(path)
        # The helper also creates missing parent directories.
        nested = str(tmp_path / "sub" / "x.txt")
        atomic_write_text(nested, "payload")
        assert open(nested).read() == "payload"

    def test_load_metrics_rejects_non_metrics_json(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"nope": 1}, handle)
        with pytest.raises(ValueError):
            load_metrics(path)

    def test_summarize_covers_every_type(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1.0)
        reg.time_series("s").sample(0.0, 3.0)
        text = summarize_metrics(reg.as_dict())
        for name in ("c", "g", "h", "s"):
            assert name in text
        assert summarize_metrics({}) == "(no metrics recorded)"


class TestTimelineRecorder:
    def test_chrome_trace_schema(self):
        tl = TimelineRecorder()
        tl.name_process(0, "node 0")
        tl.name_thread(0, 1, "inj")
        tl.complete("msg", "message", start=10.0, duration=5.0, pid=0, tid=1,
                    args={"bytes": 8})
        tl.counter("inflight", time=12.0, values={"n": 3}, pid=0)
        tl.instant("mark", "phase", time=13.0, pid=0, tid=1)
        doc = tl.to_dict()
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X", "C", "i"}
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == 10.0 and span["dur"] == 5.0
        assert span["args"]["bytes"] == 8
        meta = next(e for e in events if e["name"] == "process_name")
        assert meta["args"]["name"] == "node 0"

    def test_write_produces_valid_json(self, tmp_path):
        tl = TimelineRecorder()
        tl.complete("a", "b", 0.0, 1.0, pid=1, tid=0)
        path = str(tmp_path / "t.json")
        tl.write(path)
        with open(path) as handle:
            doc = json.load(handle)
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["dropped_events"] == 0

    def test_write_is_atomic(self, tmp_path):
        # Overwriting an existing export must go through a same-dir
        # temp file + rename, never leaving a partial file behind.
        import os

        tl = TimelineRecorder()
        tl.complete("a", "b", 0.0, 1.0, pid=1, tid=0)
        path = str(tmp_path / "t.json")
        tl.write(path)
        tl.write(path)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        with open(path) as handle:
            json.load(handle)

    def test_max_events_drops_excess(self):
        tl = TimelineRecorder(max_events=2)
        for i in range(5):
            tl.complete(f"e{i}", "c", float(i), 1.0, pid=0, tid=0)
        assert len(tl) == 2
        assert tl.dropped == 3
        assert tl.to_dict()["otherData"]["dropped_events"] == 3

    def test_metadata_idempotent(self):
        tl = TimelineRecorder()
        tl.name_process(0, "n")
        tl.name_process(0, "n")
        assert len(tl.to_dict()["traceEvents"]) == 1

    def test_null_timeline_records_nothing(self):
        assert NULL_TIMELINE.enabled is False
        NULL_TIMELINE.complete("x", "c", 0.0, 1.0, pid=0, tid=0)
        NULL_TIMELINE.counter("x", 0.0, {"v": 1}, pid=0)
        NULL_TIMELINE.name_process(0, "n")
        assert len(NULL_TIMELINE) == 0


class TestRunReport:
    def test_write_json(self, tmp_path):
        report = RunReport(app="demo", strategy="dynamic", mesh="8 nodes",
                           messages=10, wall_seconds=0.5)
        path = str(tmp_path / "r.json")
        report.write_json(path)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["app"] == "demo"
        assert doc["schema"] == 1
        assert doc["messages"] == 10

    def test_trajectory_append_and_read(self, tmp_path):
        path = str(tmp_path / "traj" / "runs.jsonl")
        RunReport(app="a", strategy="s", mesh="m").append_jsonl(path)
        RunReport(app="b", strategy="s", mesh="m").append_jsonl(path)
        reports = read_trajectory(path)
        assert [r["app"] for r in reports] == ["a", "b"]


class TestInstrumentedPipelines:
    def test_shared_memory_metrics_content(self):
        obs = MetricsRegistry()
        run = characterize_shared_memory(create_app("1d-fft", n=64), obs=obs)
        metrics = run.metrics
        assert metrics is not None
        # The acceptance trio: event-queue depth, per-channel
        # utilization series, coherence transition counts.
        assert metrics["sim.event_queue_depth"]["samples"] > 0
        channel_series = [
            k for k in metrics
            if k.startswith("net.channel[") and k.endswith(".utilization")
        ]
        assert channel_series, "no per-channel utilization series exported"
        transition_counters = [k for k in metrics if k.startswith("coherence.msg.")]
        assert transition_counters
        assert metrics["net.injected"]["value"] == len(run.log)
        assert metrics["coherence.directory_blocks"]["samples"] > 0
        assert metrics["sim.holds_per_process"]["count"] > 0

    def test_message_passing_metrics_content(self):
        obs = MetricsRegistry()
        run = characterize_message_passing(create_app("3d-fft", n=8), obs=obs)
        metrics = run.metrics
        assert metrics is not None
        assert metrics["mp.messages"]["value"] > 0
        assert metrics["mp.pending_messages"]["high_water"] >= 0
        assert metrics["replay.stall"]["count"] == len(run.log)
        assert metrics["net.delivered"]["value"] == len(run.log)

    def test_uninstrumented_run_has_no_metrics(self):
        run = characterize_shared_memory(create_app("1d-fft", n=64))
        assert run.metrics is None

    def test_timeline_spans_match_log(self):
        timeline = TimelineRecorder()
        run = characterize_shared_memory(
            create_app("1d-fft", n=64), timeline=timeline
        )
        doc = timeline.to_dict()
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        messages = [e for e in spans if e["cat"] == "message"]
        channels = [e for e in spans if e["cat"] == "channel"]
        assert len(messages) == len(run.log)
        assert channels, "no channel occupancy spans recorded"
        assert all(e["pid"] == CHANNELS_PID for e in channels)
        # Every span sits inside the run's simulated time range.
        end = max(r.deliver_time for r in run.log)
        assert all(0 <= e["ts"] <= end for e in spans)

    def test_instrumentation_does_not_change_results(self):
        plain = characterize_shared_memory(create_app("1d-fft", n=64))
        observed = characterize_shared_memory(
            create_app("1d-fft", n=64),
            obs=MetricsRegistry(),
            timeline=TimelineRecorder(),
        )
        assert len(plain.log) == len(observed.log)
        assert [r.deliver_time for r in plain.log] == [
            r.deliver_time for r in observed.log
        ]

    def test_network_inherits_simulator_registry(self):
        obs = MetricsRegistry()
        sim = Simulator(obs=obs)
        net = MeshNetwork(sim, MeshConfig(width=2, height=2))
        assert net.obs is obs


class TestReportFromRun:
    def test_report_reflects_run(self):
        obs = MetricsRegistry()
        run = characterize_shared_memory(create_app("1d-fft", n=64), obs=obs)
        report = report_from_run(
            run, app_params={"n": 64}, wall_seconds=1.0, metrics=run.metrics
        )
        doc = report.as_dict()
        assert doc["app"] == "1d-fft"
        assert doc["strategy"] == "dynamic"
        assert doc["messages"] == len(run.log)
        assert doc["metrics"]["net.injected"]["value"] == len(run.log)
