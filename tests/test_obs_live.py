"""Tests for live telemetry (repro.obs.live).

Covers the windowed LiveSeries container and its JSONL/OpenMetrics
exports, the LiveSampler's probe/window semantics on both schedulers,
the zero-cost null path when telemetry is off, online health verdicts
(including detection of a forced hot-spot saturation run), and the
pipeline/RunOptions wiring.
"""

import json
import os

import pytest

from repro import characterize_message_passing, characterize_shared_memory, create_app
from repro.core.options import RunOptions
from repro.core.synthetic import SyntheticTrafficGenerator
from repro.mesh import MeshConfig, MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.obs.live import (
    DEFAULT_SAMPLE_INTERVAL,
    LIVE_SCHEMA_VERSION,
    LiveSampler,
    LiveSeries,
    series_health,
    start_live_telemetry,
    window_health,
)
from repro.simkernel import Simulator, hold


class TestLiveSeries:
    def test_append_window_latest(self):
        s = LiveSeries()
        assert len(s) == 0
        assert s.latest() is None
        s.append(0.0, 10.0, 100.0, {"a": 1.0, "b": 2.0})
        s.append(10.0, 20.0, 101.0, {"a": 3.0, "b": 4.0})
        assert len(s) == 2
        row = s.window(0)
        assert row["schema"] == LIVE_SCHEMA_VERSION
        assert row["window"] == 0
        assert row["t_start"] == 0.0 and row["t_end"] == 10.0
        assert row["a"] == 1.0
        latest = s.latest()
        assert latest["window"] == 1 and latest["b"] == 4.0

    def test_column_set_fixed_by_first_window(self):
        s = LiveSeries()
        s.append(0.0, 1.0, 0.0, {"a": 1.0})
        with pytest.raises(ValueError, match="columns changed"):
            s.append(1.0, 2.0, 0.0, {"a": 1.0, "b": 2.0})

    def test_jsonl_roundtrip(self, tmp_path):
        s = LiveSeries()
        s.append(0.0, 5.0, 9.0, {"x.rate": 2.0})
        s.append(5.0, 10.0, 9.5, {"x.rate": 4.0})
        path = str(tmp_path / "live.jsonl")
        s.write_jsonl(path)
        lines = [json.loads(l) for l in open(path).read().splitlines()]
        assert [l["window"] for l in lines] == [0, 1]
        assert lines[1]["x.rate"] == 4.0
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_openmetrics_golden(self):
        s = LiveSeries()
        s.append(0.0, 50.0, 1.0, {"net.delivered.rate": 1.5, "sim.queue_depth": 3.0})
        expected = (
            "# TYPE repro_telemetry_windows counter\n"
            "repro_telemetry_windows_total 1\n"
            "# TYPE repro_telemetry_sim_time gauge\n"
            "repro_telemetry_sim_time 50\n"
            "# TYPE repro_net_delivered_rate gauge\n"
            "repro_net_delivered_rate 1.5\n"
            "# TYPE repro_sim_queue_depth gauge\n"
            "repro_sim_queue_depth 3\n"
            "# EOF\n"
        )
        assert s.to_openmetrics() == expected

    def test_openmetrics_empty_series(self):
        text = LiveSeries().to_openmetrics()
        assert "repro_telemetry_windows_total 0" in text
        assert text.endswith("# EOF\n")


def _drive(scheduler="calendar", interval=10.0, registry=None, messages=30):
    """A small mesh run with a sampler attached; returns the sampler."""
    sim = Simulator(scheduler=scheduler)
    net = MeshNetwork(sim, MeshConfig(width=2, height=2))

    def source(src):
        for n in range(messages):
            yield hold(1.0 + (src + n) % 3)
            yield from net.transfer(
                NetworkMessage(src=src, dst=(src + 1) % 4, length_bytes=64)
            )

    for src in range(4):
        sim.process(source(src), name=f"src{src}")
    sampler = LiveSampler(interval, registry=registry, wall_clock=lambda: 0.0)
    net.attach_live(sampler)
    sampler.attach(sim)
    sim.run()
    return sampler


class TestLiveSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            LiveSampler(0.0)

    def test_windows_are_deltas_not_cumulative(self):
        sampler = _drive()
        series = sampler.series
        assert len(series) >= 2
        delivered = series.columns["net.delivered.delta"]
        # Windowed: per-window deliveries sum to the run total, and no
        # window holds the whole (cumulative) count.
        assert sum(delivered) == 120
        assert max(delivered) < 120
        rates = series.columns["net.delivered.rate"]
        spans = [
            e - s for s, e in zip(series.t_start, series.t_end)
        ]
        for rate, delta, span in zip(rates, delivered, spans):
            assert rate == pytest.approx(delta / span)

    def test_expected_columns(self):
        series = _drive().series
        assert set(series.columns) == {
            "sim.events.delta", "sim.events.rate", "sim.queue_depth",
            "net.injected.delta", "net.injected.rate",
            "net.delivered.delta", "net.delivered.rate",
            "net.in_flight", "net.channel_utilization", "net.queue_depth",
        }
        # Utilization is a mean over channels: bounded to [0, 1].
        for u in series.columns["net.channel_utilization"]:
            assert 0.0 <= u <= 1.0

    def test_sampler_drains_with_simulation(self):
        # The run above terminates -- the sampler must not keep the
        # event list alive past the last model event + one interval.
        sampler = _drive(interval=5.0)
        sim_end = sampler.series.t_end[-1]
        assert sampler.ticks == len(sampler.series)
        assert sim_end % 5.0 == 0.0

    def test_identical_windows_on_both_schedulers(self):
        a = _drive(scheduler="calendar").series.as_dict()
        b = _drive(scheduler="heap").series.as_dict()
        a.pop("wall"), b.pop("wall")
        assert a == b

    def test_registry_mirror(self):
        reg = MetricsRegistry()
        sampler = _drive(registry=reg)
        ts = reg.time_series("live.net.delivered.delta")
        assert ts.values == sampler.series.columns["net.delivered.delta"]
        assert ts.latest() == (
            sampler.series.t_end[-1],
            sampler.series.columns["net.delivered.delta"][-1],
        )

    def test_attach_twice_rejected(self):
        sampler = LiveSampler(1.0)
        sim = Simulator()

        def body():
            yield hold(1.0)

        sim.process(body(), name="p")
        sampler.attach(sim)
        with pytest.raises(ValueError, match="already attached"):
            sampler.attach(sim)
        sim.run()


class TestNullPath:
    def test_start_live_telemetry_off_returns_none(self):
        sim = Simulator()
        assert start_live_telemetry(None, sim) is None
        assert start_live_telemetry(RunOptions(), sim) is None
        # Nothing scheduled: the queue stays empty.
        assert sim.queue_depth == 0

    def test_default_options_do_not_perturb_results(self):
        run = characterize_shared_memory(create_app("1d-fft", n=64))
        assert run.live is None
        sampled = characterize_shared_memory(
            create_app("1d-fft", n=64),
            options=RunOptions(sample_interval=25.0),
        )
        assert len(sampled.live) >= 1
        # msg_id is a process-global counter, so it drifts between
        # back-to-back runs; everything else must be identical.
        from dataclasses import replace

        assert [replace(r, msg_id=0) for r in sampled.log.records] == [
            replace(r, msg_id=0) for r in run.log.records
        ]

    def test_null_registry_time_series_latest_is_none(self):
        ts = NULL_REGISTRY.time_series("anything")
        ts.sample(1.0, 2.0)
        assert ts.latest() is None


class TestRunOptionsWiring:
    def test_unset_fields_stay_out_of_cache_key(self):
        # as_dict is the sweep cache-key input: adding the telemetry
        # fields must not invalidate every pre-PR cache entry.
        assert "sample_interval" not in RunOptions().as_dict()
        assert "heartbeat" not in RunOptions().as_dict()
        d = RunOptions(sample_interval=5.0).as_dict()
        assert d["sample_interval"] == 5.0
        assert RunOptions.from_dict(d).sample_interval == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RunOptions(sample_interval=0.0)
        assert RunOptions(heartbeat="hb.jsonl").live_enabled
        assert not RunOptions().live_enabled

    def test_heartbeat_defaults_sample_interval(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        sim = Simulator()

        def body():
            yield hold(DEFAULT_SAMPLE_INTERVAL * 3)

        sim.process(body(), name="p")
        live = start_live_telemetry(
            RunOptions(heartbeat=path), sim, wall_clock=lambda: 0.0
        )
        assert live.sampler.interval == DEFAULT_SAMPLE_INTERVAL
        sim.run()
        live.finish("done")
        assert os.path.exists(path)


class TestPipelineIntegration:
    def test_static_strategy_samples_replay(self):
        run = characterize_message_passing(
            create_app("3d-fft", n=8), options=RunOptions(sample_interval=50.0)
        )
        assert len(run.live) >= 1
        assert "net.delivered.delta" in run.live.columns

    def test_synthetic_generator_samples_drive(self):
        base = characterize_shared_memory(create_app("1d-fft", n=64))
        gen = SyntheticTrafficGenerator(
            base.characterization,
            mesh_config=MeshConfig(width=4, height=2),
            options=RunOptions(sample_interval=100.0),
        )
        gen.generate(messages_per_source=40)
        assert gen.live_series is not None
        assert len(gen.live_series) >= 1


class TestOnlineHealth:
    def test_window_verdicts(self):
        ok = {"net.injected.delta": 5.0, "net.delivered.delta": 5.0,
              "net.in_flight": 0.0, "net.channel_utilization": 0.2}
        assert window_health(ok)[0] == "ok"
        idle = {"net.injected.delta": 0.0, "net.delivered.delta": 0.0,
                "net.in_flight": 0.0, "net.channel_utilization": 0.0}
        assert window_health(idle)[0] == "idle"
        hot = dict(ok, **{"net.channel_utilization": 0.9})
        assert window_health(hot)[0] == "saturating"
        backlog = {"net.injected.delta": 10.0, "net.delivered.delta": 2.0,
                   "net.in_flight": 8.0, "net.channel_utilization": 0.4}
        assert window_health(backlog)[0] == "saturating"
        stalled = {"net.injected.delta": 3.0, "net.delivered.delta": 0.0,
                   "net.in_flight": 12.0, "net.channel_utilization": 1.0}
        verdict, notes = window_health(stalled)
        assert verdict == "stalled"
        assert notes

    def test_kernel_only_fallback(self):
        assert window_health({"sim.events.delta": 10.0})[0] == "ok"
        assert window_health({"sim.events.delta": 0.0})[0] == "idle"

    def test_series_health_flags_peak_collapse(self):
        s = LiveSeries()
        for i, rate in enumerate((10.0, 12.0, 1.0)):
            s.append(i * 5.0, (i + 1) * 5.0, 0.0, {
                "net.injected.delta": rate * 5.0,
                "net.delivered.delta": rate * 5.0,
                "net.delivered.rate": rate,
                "net.in_flight": 0.0,
                "net.channel_utilization": 0.1,
            })
        verdict, notes = series_health(s)
        assert verdict == "saturating"
        assert any("below half the peak" in n for n in notes)

    def test_detects_forced_saturation_live(self):
        # Hot-spot overload: every node floods node 0 faster than one
        # ejection channel can drain. The backlog grows, and the live
        # verdicts must flag it before the run ends.
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig(width=4, height=4))

        def source(src):
            for _ in range(40):
                yield hold(0.25)
                yield from net.transfer(
                    NetworkMessage(src=src, dst=0, length_bytes=256)
                )

        for src in range(1, 16):
            sim.process(source(src), name=f"src{src}")
        sampler = LiveSampler(20.0, wall_clock=lambda: 0.0)
        net.attach_live(sampler)
        sampler.attach(sim)
        sim.run()
        verdicts = [
            window_health({k: col[i] for k, col in sampler.series.columns.items()})[0]
            for i in range(len(sampler.series))
        ]
        assert {"saturating", "stalled"} & set(verdicts)
