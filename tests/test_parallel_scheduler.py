"""Tests for the conservative parallel mesh scheduler.

Extends the cross-scheduler equivalence suite (calendar vs heap in
``test_scheduler_equivalence.py``) to the ``parallel`` scheduler: the
merged per-region netlog must be bit-identical to the serial calendar
run for boundary-free traffic, and exactly conservative (counts,
bytes, routes) for traffic that crosses regions.  Also covers the
partition geometry, the options/CLI seam, and the merged-manifest
contract every existing spill consumer relies on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RunOptions, run_pattern
from repro.core.options import (
    PARALLEL_SCHEDULER,
    PARALLEL_SYNC_MODES,
    RUN_SCHEDULERS,
)
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mesh.netlog_stream import (
    StreamingSummary,
    materialize_manifest,
    read_manifest,
    summary_from_manifest,
)
from repro.mesh.partition import (
    PARTITIONERS,
    MeshPartition,
    make_partition,
    register_partitioner,
    slice_partition,
)
from repro.simkernel import SCHEDULERS
from repro.simkernel.engine_parallel import (
    SYNC_MODES,
    ParallelRunResult,
    ScheduleTraffic,
    SerialRunResult,
    canonical_order,
    logs_bit_identical,
    run_parallel_mesh,
    run_serial_schedule,
)
from repro.simkernel.engine_parallel import (
    PARALLEL_SCHEDULER as ENGINE_PARALLEL_SCHEDULER,
)


def local_traffic(config, messages=10, seed=7):
    return ScheduleTraffic.compile_pattern(
        config, pattern="local", messages_per_source=messages, seed=seed
    )


def uniform_traffic(config, messages=8, seed=7):
    return ScheduleTraffic.compile_pattern(
        config, pattern="uniform", messages_per_source=messages, seed=seed
    )


# ----------------------------------------------------------------------
# partition geometry
# ----------------------------------------------------------------------
class TestSlicePartition:
    def test_even_split(self):
        part = slice_partition(MeshConfig(width=4, height=4), 2)
        assert part.bounds == ((0, 2), (2, 4))
        assert part.num_regions == 2
        assert not any(part.is_empty(r) for r in range(2))

    def test_remainder_rows_go_to_the_first_bands(self):
        part = slice_partition(MeshConfig(width=4, height=5), 2)
        assert part.bounds == ((0, 3), (3, 5))

    def test_more_regions_than_rows_leaves_empty_tail_bands(self):
        part = slice_partition(MeshConfig(width=4, height=2), 4)
        assert part.bounds == ((0, 1), (1, 2), (2, 2), (2, 2))
        assert part.is_empty(2) and part.is_empty(3)
        with pytest.raises(ValueError, match="empty"):
            part.region_config(2)

    def test_rejects_non_positive_region_count(self):
        with pytest.raises(ValueError, match="regions must be >= 1"):
            slice_partition(MeshConfig(width=4, height=4), 0)


class TestPartitionValidation:
    def test_rejects_torus(self):
        with pytest.raises(ValueError, match="mesh topology"):
            slice_partition(MeshConfig.parse("4x4:torus"), 2)

    def test_rejects_adaptive_routing(self):
        config = MeshConfig(width=4, height=4, routing="adaptive", virtual_channels=2)
        with pytest.raises(ValueError, match="deterministic"):
            slice_partition(config, 2)

    def test_rejects_gapped_bounds(self):
        with pytest.raises(ValueError, match="contiguously"):
            MeshPartition(
                config=MeshConfig(width=4, height=4), bounds=((0, 1), (2, 4))
            )

    def test_rejects_short_coverage(self):
        with pytest.raises(ValueError, match="mesh has 4"):
            MeshPartition(config=MeshConfig(width=4, height=4), bounds=((0, 3),))


class TestIdAlgebra:
    def test_region_of_and_local_roundtrip(self):
        part = slice_partition(MeshConfig(width=4, height=4), 2)
        for node in range(16):
            region = part.region_of(node)
            assert node in part.nodes(region)
            local = part.to_local(region, node)
            assert part.to_global(region, local) == node

    def test_to_local_rejects_foreign_nodes(self):
        part = slice_partition(MeshConfig(width=4, height=4), 2)
        with pytest.raises(ValueError, match="not in region"):
            part.to_local(0, 15)

    def test_region_config_keeps_width_and_timing(self):
        config = MeshConfig(width=4, height=4, channel_time=2.5)
        sub = slice_partition(config, 2).region_config(1)
        assert (sub.width, sub.height) == (4, 2)
        assert sub.channel_time == 2.5


class TestRouteLegs:
    def test_same_region_is_one_leg(self):
        part = slice_partition(MeshConfig(width=4, height=4), 2)
        assert part.route_legs(0, 5) == [(0, 0, 5)]

    def test_crossing_exits_on_the_destination_column(self):
        part = slice_partition(MeshConfig(width=4, height=4), 2)
        # 1 (row 0) -> 14 (row 3, column 2): XY corrects X in row 0,
        # so region 0's leg ends at row 1 column 2 (node 6).
        assert part.route_legs(1, 14) == [(0, 1, 6), (1, 10, 14)]

    def test_upward_route_reverses_the_chain(self):
        part = slice_partition(MeshConfig(width=4, height=4), 2)
        assert part.route_legs(14, 1) == [(1, 14, 9), (0, 5, 1)]

    def test_three_region_chain(self):
        part = slice_partition(MeshConfig(width=2, height=6), 3)
        legs = part.route_legs(0, 11)  # row 0 -> row 5, column 1
        assert [leg[0] for leg in legs] == [0, 1, 2]
        assert part.region_chain(0, 11) == (0, 1, 2)
        # Legs chain across adjacent rows of the destination column,
        # and the omitted boundary channels make up the hop difference.
        leg_hops = sum(
            abs(a % 2 - b % 2) + abs(a // 2 - b // 2) for _, a, b in legs
        )
        manhattan = 1 + 5
        assert leg_hops + (len(legs) - 1) == manhattan

    def test_lookahead_is_the_boundary_channel_latency(self):
        config = MeshConfig(width=4, height=4, routing_time=1.5, channel_time=0.5)
        assert slice_partition(config, 2).lookahead() == 2.0

    def test_zero_lookahead_is_rejected(self):
        config = MeshConfig(width=4, height=4, routing_time=0.0, channel_time=0.0)
        with pytest.raises(ValueError, match="positive inter-region"):
            slice_partition(config, 2).lookahead()


class TestPartitionerRegistry:
    def test_unknown_partitioner_is_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partition(MeshConfig(width=4, height=4), 2, "voronoi")

    def test_register_and_use_a_custom_partitioner(self):
        def top_heavy(config, regions):
            assert regions == 2
            return MeshPartition(
                config=config, bounds=((0, config.height - 1), (config.height - 1, config.height))
            )

        register_partitioner("top-heavy", top_heavy)
        try:
            part = make_partition(MeshConfig(width=4, height=4), 2, "top-heavy")
            assert part.bounds == ((0, 3), (3, 4))
        finally:
            del PARTITIONERS["top-heavy"]


# ----------------------------------------------------------------------
# pre-drawn traffic
# ----------------------------------------------------------------------
class TestScheduleTraffic:
    def test_local_pattern_stays_in_the_source_row(self):
        config = MeshConfig(width=4, height=4)
        traffic = local_traffic(config)
        for src, entries in traffic.per_source.items():
            for _, dst, _, _ in entries:
                assert dst // 4 == src // 4 and dst != src

    def test_local_pattern_never_crosses_a_row_sliced_boundary(self):
        config = MeshConfig(width=4, height=4)
        part = slice_partition(config, 4)
        assert local_traffic(config).crossing_pairs(part) == set()

    def test_uniform_pattern_crosses_boundaries(self):
        config = MeshConfig(width=4, height=4)
        part = slice_partition(config, 2)
        assert uniform_traffic(config).crossing_pairs(part)

    def test_compile_is_deterministic_per_seed(self):
        config = MeshConfig(width=4, height=4)
        a, b = uniform_traffic(config, seed=5), uniform_traffic(config, seed=5)
        assert a.per_source == b.per_source
        assert a.per_source != uniform_traffic(config, seed=6).per_source

    def test_rejections(self):
        config = MeshConfig(width=4, height=4)
        with pytest.raises(ValueError, match="unknown pattern"):
            ScheduleTraffic.compile_pattern(config, pattern="zipf")
        with pytest.raises(ValueError, match="mean_gap"):
            ScheduleTraffic.compile_pattern(config, mean_gap=0.0)
        with pytest.raises(ValueError, match="msg_id blocks"):
            ScheduleTraffic.compile_pattern(config, messages_per_source=1_000_000)
        with pytest.raises(ValueError, match="duplicate msg_id"):
            ScheduleTraffic(4, {0: [(1.0, 1, 64, 9), (1.0, 2, 64, 9)]})
        with pytest.raises(ValueError, match="destination 9"):
            ScheduleTraffic(4, {0: [(1.0, 9, 64, 0)]})
        with pytest.raises(ValueError, match="negative gap"):
            ScheduleTraffic(4, {0: [(-1.0, 1, 64, 0)]})


# ----------------------------------------------------------------------
# serial vs parallel equivalence
# ----------------------------------------------------------------------
class TestParallelBitIdentity:
    @pytest.mark.parametrize("regions", [2, 4])
    @pytest.mark.parametrize("sync", SYNC_MODES)
    def test_row_local_traffic_is_bit_identical(self, tmp_path, regions, sync):
        config = MeshConfig(width=4, height=4)
        traffic = local_traffic(config)
        serial = run_serial_schedule(config, traffic, scheduler="calendar")
        parallel = run_parallel_mesh(
            config,
            traffic,
            regions=regions,
            sync=sync,
            directory=str(tmp_path / f"{sync}{regions}"),
        )
        assert parallel.records == len(serial.log)
        assert logs_bit_identical(serial.log, parallel.merged_log())
        # No scheduled message crosses a region boundary, so every
        # worker drains its whole queue in the first round.
        assert parallel.rounds == 1

    def test_empty_regions_idle_without_breaking_identity(self, tmp_path):
        config = MeshConfig(width=4, height=2)
        traffic = local_traffic(config)
        serial = run_serial_schedule(config, traffic, scheduler="calendar")
        parallel = run_parallel_mesh(
            config, traffic, regions=4, directory=str(tmp_path)
        )
        assert parallel.regions == 4
        assert parallel.active_regions == (0, 1)
        assert logs_bit_identical(serial.log, parallel.merged_log())

    def test_single_region_degenerates_to_serial(self, tmp_path):
        config = MeshConfig(width=4, height=2)
        traffic = uniform_traffic(config)
        serial = run_serial_schedule(config, traffic, scheduler="calendar")
        parallel = run_parallel_mesh(
            config, traffic, regions=1, directory=str(tmp_path)
        )
        assert logs_bit_identical(serial.log, parallel.merged_log())

    def test_matches_the_heap_oracle_too(self, tmp_path):
        # Transitivity check on the whole equivalence suite: parallel
        # == calendar == heap on boundary-free traffic.
        config = MeshConfig(width=4, height=4)
        traffic = local_traffic(config)
        heap = run_serial_schedule(config, traffic, scheduler="heap")
        parallel = run_parallel_mesh(config, traffic, directory=str(tmp_path))
        assert logs_bit_identical(heap.log, parallel.merged_log())


class TestCrossRegionConservation:
    @pytest.mark.parametrize("sync", SYNC_MODES)
    def test_uniform_traffic_is_exactly_conserved(self, tmp_path, sync):
        config = MeshConfig(width=4, height=4)
        traffic = uniform_traffic(config)
        serial = run_serial_schedule(config, traffic, scheduler="calendar")
        parallel = run_parallel_mesh(
            config, traffic, regions=2, sync=sync, directory=str(tmp_path)
        )
        merged = parallel.merged_log()
        assert len(merged) == len(serial.log) == traffic.message_count

        scols, _ = canonical_order(serial.log).columns()
        pcols, _ = merged.columns()
        serial_by_id = dict(zip(scols["msg_id"], zip(scols["src"], scols["dst"],
                                                     scols["length_bytes"],
                                                     scols["hops"])))
        parallel_by_id = dict(zip(pcols["msg_id"], zip(pcols["src"], pcols["dst"],
                                                       pcols["length_bytes"],
                                                       pcols["hops"])))
        # Same messages, same endpoints, same payloads, same route
        # lengths (each omitted boundary channel is charged one hop).
        assert serial_by_id == parallel_by_id
        assert np.all(pcols["deliver_time"] >= pcols["inject_time"])
        assert np.all(pcols["start_time"] >= pcols["inject_time"])

        serial_summary = StreamingSummary.from_log(serial.log)
        assert np.array_equal(parallel.summary.count_matrix,
                              serial_summary.count_matrix)
        assert np.array_equal(parallel.summary.volume_matrix,
                              serial_summary.volume_matrix)
        assert parallel.summary.total_bytes == serial_summary.total_bytes

    def test_null_mode_outpaces_the_barrier(self, tmp_path):
        # Per-region null-message horizons must never need *more*
        # rounds than the single global barrier horizon.
        config = MeshConfig(width=4, height=4)
        traffic = uniform_traffic(config)
        barrier = run_parallel_mesh(
            config, traffic, regions=2, sync="barrier",
            directory=str(tmp_path / "b"),
        )
        null = run_parallel_mesh(
            config, traffic, regions=2, sync="null",
            directory=str(tmp_path / "n"),
        )
        assert null.rounds <= barrier.rounds
        assert logs_bit_identical(barrier.merged_log(), null.merged_log())


class TestParallelValidation:
    def test_unknown_sync_mode(self, tmp_path):
        config = MeshConfig(width=4, height=2)
        with pytest.raises(ValueError, match="unknown sync mode"):
            run_parallel_mesh(
                config, local_traffic(config), sync="optimistic",
                directory=str(tmp_path),
            )

    def test_traffic_mesh_size_mismatch(self, tmp_path):
        traffic = local_traffic(MeshConfig(width=4, height=4))
        with pytest.raises(ValueError, match="traffic drawn for 16 nodes"):
            run_parallel_mesh(
                MeshConfig(width=4, height=2), traffic, directory=str(tmp_path)
            )

    def test_zero_lookahead_is_rejected_up_front(self, tmp_path):
        config = MeshConfig(width=4, height=2, routing_time=0.0, channel_time=0.0)
        with pytest.raises(ValueError, match="positive inter-region"):
            run_parallel_mesh(
                config, local_traffic(config), directory=str(tmp_path)
            )


# ----------------------------------------------------------------------
# merged manifest contract
# ----------------------------------------------------------------------
class TestMergedManifest:
    def test_manifest_readable_by_every_spill_consumer(self, tmp_path):
        config = MeshConfig(width=4, height=4)
        traffic = uniform_traffic(config)
        parallel = run_parallel_mesh(
            config, traffic, regions=2, directory=str(tmp_path)
        )
        doc = read_manifest(parallel.manifest_path)
        assert doc["records"] == traffic.message_count
        assert doc["parallel"]["active_regions"] == [0, 1]
        assert doc["parallel"]["lookahead"] == parallel.lookahead
        assert doc["parallel"]["rounds"] == parallel.rounds
        assert len(doc["parallel"]["region_manifests"]) == 2

        assert len(materialize_manifest(parallel.manifest_path)) == doc["records"]
        summary = summary_from_manifest(parallel.manifest_path)
        assert summary.messages == doc["records"]

    def test_doctor_accepts_the_merged_manifest(self, tmp_path, capsys):
        from repro.cli import main

        config = MeshConfig(width=4, height=2)
        parallel = run_parallel_mesh(
            config, uniform_traffic(config), directory=str(tmp_path)
        )
        assert main(["doctor", parallel.manifest_path]) == 0
        assert "healthy" in capsys.readouterr().out


# ----------------------------------------------------------------------
# options / run_pattern / CLI seam
# ----------------------------------------------------------------------
class TestParallelOptions:
    def test_constants_agree_across_layers(self):
        assert PARALLEL_SCHEDULER == ENGINE_PARALLEL_SCHEDULER
        assert PARALLEL_SYNC_MODES == SYNC_MODES
        assert RUN_SCHEDULERS == SCHEDULERS + (PARALLEL_SCHEDULER,)

    def test_parallel_scheduler_is_accepted(self):
        options = RunOptions(scheduler="parallel", parallel_regions=4,
                             parallel_sync="null")
        assert options.kernel_scheduler == "calendar"
        assert RunOptions(scheduler="heap").kernel_scheduler == "heap"

    def test_parallel_knobs_are_validated(self):
        with pytest.raises(ValueError, match="parallel_regions"):
            RunOptions(scheduler="parallel", parallel_regions=0)
        with pytest.raises(ValueError, match="parallel_sync"):
            RunOptions(scheduler="parallel", parallel_sync="optimistic")

    def test_unset_parallel_fields_keep_cache_keys_stable(self):
        doc = RunOptions().as_dict()
        assert "parallel_regions" not in doc and "parallel_sync" not in doc
        doc = RunOptions(scheduler="parallel", parallel_regions=2).as_dict()
        assert doc["parallel_regions"] == 2

    def test_run_pattern_dispatches_on_the_scheduler(self, tmp_path):
        config = MeshConfig(width=4, height=2)
        serial = run_pattern(
            config, pattern="local", messages_per_source=6,
            options=RunOptions(scheduler="calendar"),
        )
        assert isinstance(serial, SerialRunResult)
        parallel = run_pattern(
            config, pattern="local", messages_per_source=6,
            options=RunOptions(
                scheduler="parallel", parallel_regions=2,
                log_spill=str(tmp_path),
            ),
        )
        assert isinstance(parallel, ParallelRunResult)
        assert logs_bit_identical(serial.log, parallel.merged_log())

    def test_drive_cli_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        spill = str(tmp_path / "pmesh")
        rc = main(
            [
                "drive", "--mesh", "4x4", "--pattern", "local",
                "--messages", "6", "--scheduler", "parallel",
                "--regions", "2", "--log-spill", spill,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheduler parallel" in out
        rc = main(["doctor", f"{spill}/netlog.manifest.json"])
        assert rc == 0


# ----------------------------------------------------------------------
# region-partial summary folds
# ----------------------------------------------------------------------
def _fill_log(log, rows):
    for i, (src, dst, length, latency) in enumerate(rows):
        inject = float(i)
        log.append(i, src, dst, length, "p2p", inject, inject + 0.5,
                   inject + 0.5 + latency, 0.25, abs(src - dst) + 1)


record_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),      # src
        st.integers(min_value=0, max_value=7),      # dst
        st.sampled_from([16, 64, 256]),             # length_bytes
        st.floats(min_value=0.5, max_value=50.0,    # latency
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(rows=record_rows, regions=st.integers(min_value=1, max_value=4))
def test_region_partial_summaries_fold_to_the_single_stream_summary(
    rows, regions
):
    """The parallel merge contract: per-region partial summaries folded
    in region order must equal one summary over the whole stream —
    integer tallies exactly, float moments to accumulation round-off."""
    whole_log = NetworkLog()
    _fill_log(whole_log, rows)
    whole = StreamingSummary.from_log(whole_log)

    shards = [NetworkLog() for _ in range(regions)]
    for i, (src, dst, length, latency) in enumerate(rows):
        inject = float(i)
        shards[src % regions].append(
            i, src, dst, length, "p2p", inject, inject + 0.5,
            inject + 0.5 + latency, 0.25, abs(src - dst) + 1,
        )
    folded = StreamingSummary.merged(
        [StreamingSummary.from_log(shard) for shard in shards]
    )

    assert folded.messages == whole.messages
    assert folded.total_bytes == whole.total_bytes
    assert folded.length_counts == whole.length_counts
    assert folded.kind_counts == whole.kind_counts
    assert np.array_equal(folded.count_matrix, whole.count_matrix)
    assert np.array_equal(folded.volume_matrix, whole.volume_matrix)
    assert folded.first_inject == whole.first_inject
    assert folded.last_deliver == whole.last_deliver
    assert folded.latency.count == whole.latency.count
    assert folded.latency.min_value == whole.latency.min_value
    assert folded.latency.max_value == whole.latency.max_value
    assert folded.latency.mean == pytest.approx(whole.latency.mean, rel=1e-9)
