"""Property-based tests (hypothesis) over the core data structures.

Invariants exercised here are the load-bearing assumptions of the
simulation stack: event ordering, facility conservation, cache
geometry, block mapping, routing validity, wormhole latency lower
bounds, distribution self-consistency, trace bookkeeping.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.coherence import BlockMap, Cache, CacheState
from repro.mesh import MeshConfig, MeshNetwork, NetworkMessage, make_topology
from repro.simkernel import Facility, Simulator, hold, release, request
from repro.stats import (
    Exponential,
    Gamma,
    Hyperexponential2,
    Uniform,
    Weibull,
    build_histogram,
    ks_statistic,
)
from repro.trace import TraceLog


class TestSimkernelProperties:
    @settings(max_examples=30, deadline=None)
    @given(durations=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    def test_clock_is_monotone_and_ends_at_total(self, durations):
        sim = Simulator()
        observed = []

        def proc():
            for d in durations:
                yield hold(d)
                observed.append(sim.now)

        sim.process(proc(), name="p")
        sim.run()
        assert observed == sorted(observed)
        assert observed[-1] == pytest.approx(sum(durations))

    @settings(max_examples=30, deadline=None)
    @given(
        n_users=st.integers(1, 12),
        service=st.floats(0.1, 10.0),
    )
    def test_facility_serializes_exactly(self, n_users, service):
        """Single-server facility: total busy time = n * service and no
        two holders overlap."""
        sim = Simulator()
        fac = Facility(sim, name="f")
        spans = []

        def user():
            yield request(fac)
            start = sim.now
            yield hold(service)
            yield release(fac)
            spans.append((start, sim.now))

        for _ in range(n_users):
            sim.process(user(), name="u")
        end = sim.run()
        assert end == pytest.approx(n_users * service)
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9  # no overlap

    @settings(max_examples=20, deadline=None)
    @given(
        servers=st.integers(1, 4),
        n_users=st.integers(1, 16),
    )
    def test_multiserver_facility_capacity_never_exceeded(self, servers, n_users):
        sim = Simulator()
        fac = Facility(sim, name="f", servers=servers)
        concurrency = []

        def user():
            yield request(fac)
            concurrency.append(fac.busy)
            yield hold(1.0)
            yield release(fac)

        for _ in range(n_users):
            sim.process(user(), name="u")
        sim.run()
        assert max(concurrency) <= servers
        assert len(concurrency) == n_users


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        lines=st.sampled_from([2, 4, 8, 16]),
        assoc=st.sampled_from([1, 2, 4]),
        blocks=st.lists(st.integers(0, 100), min_size=1, max_size=200),
    )
    def test_occupancy_never_exceeds_capacity(self, lines, assoc, blocks):
        assume(assoc <= lines and lines % assoc == 0)
        cache = Cache(lines=lines, associativity=assoc)
        for block in blocks:
            cache.insert(block, CacheState.SHARED)
            assert cache.occupancy <= lines
            # A just-inserted block is always resident.
            assert cache.peek(block) is CacheState.SHARED

    @settings(max_examples=30, deadline=None)
    @given(blocks=st.lists(st.integers(0, 50), min_size=1, max_size=100))
    def test_hits_plus_misses_equals_lookups(self, blocks):
        cache = Cache(lines=8, associativity=2)
        for block in blocks:
            state = cache.lookup(block)
            if state is None:
                cache.insert(block, CacheState.SHARED)
        assert cache.hits + cache.misses == len(blocks)


class TestBlockMapProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        block_words=st.integers(1, 64),
        num_nodes=st.integers(1, 64),
        address=st.integers(0, 10_000),
    )
    def test_address_within_its_block_range(self, block_words, num_nodes, address):
        bm = BlockMap(block_words, num_nodes)
        block = bm.block_of(address)
        start, end = bm.block_range(block)
        assert start <= address < end
        assert 0 <= bm.home_of(block) < num_nodes

    @settings(max_examples=20, deadline=None)
    @given(
        block=st.integers(0, 1000),
        node=st.integers(0, 7),
    )
    def test_home_override_sticks(self, block, node):
        bm = BlockMap(8, 8)
        bm.set_home(block, node)
        assert bm.home_of(block) == node


class TestMeshProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(["mesh", "torus", "hypercube"]),
        data=st.data(),
    )
    def test_single_message_latency_equals_zero_load(self, name, data):
        vcs = 2 if name == "torus" else 1
        config = MeshConfig(width=4, height=2, topology=name, virtual_channels=vcs)
        src = data.draw(st.integers(0, 7))
        dst = data.draw(st.integers(0, 7))
        nbytes = data.draw(st.integers(0, 256))
        sim = Simulator()
        net = MeshNetwork(sim, config)
        done = net.inject(NetworkMessage(src=src, dst=dst, length_bytes=nbytes))
        sim.run()
        record = done.value
        assert record.latency == pytest.approx(
            config.zero_load_latency(record.hops, nbytes)
        )
        assert record.contention == 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=25
        )
    )
    def test_all_messages_always_delivered(self, pairs):
        """No deadlock, no loss, and latency >= zero-load, whatever the
        traffic mix."""
        config = MeshConfig(width=4, height=2)
        sim = Simulator()
        net = MeshNetwork(sim, config)
        for s, d in pairs:
            net.inject(NetworkMessage(src=s, dst=d, length_bytes=32))
        sim.run()
        assert len(net.log) == len(pairs)
        assert net.in_flight == 0
        for record in net.log:
            floor = config.zero_load_latency(record.hops, record.length_bytes)
            assert record.latency >= floor - 1e-9
            assert record.latency == pytest.approx(floor + record.contention)

    @settings(max_examples=20, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=25
        )
    )
    def test_torus_never_deadlocks(self, pairs):
        config = MeshConfig(width=4, height=2, topology="torus", virtual_channels=2)
        sim = Simulator()
        net = MeshNetwork(sim, config)
        for s, d in pairs:
            net.inject(NetworkMessage(src=s, dst=d, length_bytes=64))
        sim.run()
        assert len(net.log) == len(pairs)


class TestDistributionProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        dist=st.sampled_from(
            [
                Exponential(rate=0.5),
                Gamma(shape=2.0, scale=3.0),
                Weibull(shape=1.3, scale=2.0),
                Uniform(low=1.0, width=4.0),
                Hyperexponential2(p=0.3, rate1=2.0, rate2=0.2),
            ]
        ),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_own_samples_pass_ks(self, dist, seed):
        sample = dist.sample(np.random.default_rng(seed), 4000)
        assert ks_statistic(sample, dist) < 0.05

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        policy=st.sampled_from(["equal-width", "equal-mass"]),
    )
    def test_histogram_mass_conserved(self, seed, policy):
        data = np.random.default_rng(seed).exponential(3.0, 500)
        hist = build_histogram(data, policy=policy)
        assert hist.total == 500
        assert float(np.sum(hist.density * hist.widths)) == pytest.approx(1.0)


class TestTraceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 3),            # src
                st.integers(0, 3),            # dst
                st.integers(0, 4096),         # bytes
                st.floats(0.0, 1000.0),       # inter-post delta
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_gaps_reconstruct_post_times(self, events):
        trace = TraceLog()
        clock = 0.0
        for src, dst, nbytes, delta in events:
            clock += delta
            trace.record(
                src=src, dst=dst, length_bytes=nbytes, kind="p2p", tag=0,
                post_time=clock,
            )
        # Per source, cumulative gaps rebuild the post times exactly.
        for src in trace.sources():
            series = trace.by_source(src)
            rebuilt = 0.0
            for event in series:
                rebuilt += event.gap
                assert rebuilt == pytest.approx(event.post_time)
