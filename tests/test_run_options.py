"""The unified RunOptions API and its legacy-kwarg deprecation shim."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.apps import create_app
from repro.core import (
    RunOptions,
    characterize_shared_memory,
    measure_load_point,
    resolve_run_options,
    run_dynamic,
    run_static,
    run_synthetic,
)
from repro.obs import MetricsRegistry, TimelineRecorder
from repro.simkernel import SCHEDULER_ENV
from repro.simkernel.engine_calendar import CalendarScheduler
from repro.simkernel.engine_heap import HeapScheduler


def _normalized(log):
    """Activity-log records with the process-global msg_id zeroed, so
    two runs in the same process compare equal."""
    return [dataclasses.replace(r, msg_id=0) for r in log.records]


# ----------------------------------------------------------------------
# the bundle itself
# ----------------------------------------------------------------------
def test_defaults_and_validation():
    options = RunOptions()
    assert not options.metrics and not options.timeline
    assert options.check_leaks and options.check_stall
    assert options.max_no_progress_events is None
    assert options.scheduler is None
    with pytest.raises(ValueError, match="scheduler"):
        RunOptions(scheduler="fifo")
    with pytest.raises(ValueError, match="max_no_progress_events"):
        RunOptions(max_no_progress_events=0)
    with pytest.raises(ValueError, match="scheduler"):
        RunOptions().with_(scheduler="bogus")


def test_round_trip_and_unknown_fields():
    options = RunOptions(metrics=True, scheduler="heap", max_no_progress_events=5)
    assert RunOptions.from_dict(options.as_dict()) == options
    with pytest.raises(ValueError, match="unknown RunOptions field"):
        RunOptions.from_dict({"metrics": True, "turbo": 11})


def test_factories(monkeypatch):
    monkeypatch.delenv(SCHEDULER_ENV, raising=False)
    quiet = RunOptions()
    assert quiet.make_registry() is None
    assert quiet.make_timeline() is None
    assert isinstance(quiet.make_simulator()._sched, CalendarScheduler)
    monkeypatch.setenv(SCHEDULER_ENV, "heap")
    assert isinstance(quiet.make_simulator()._sched, HeapScheduler)
    assert isinstance(
        RunOptions(scheduler="calendar").make_simulator()._sched, CalendarScheduler
    )
    loud = RunOptions(metrics=True, timeline=True, scheduler="heap")
    assert isinstance(loud.make_registry(), MetricsRegistry)
    assert isinstance(loud.make_timeline(), TimelineRecorder)
    assert isinstance(loud.make_simulator()._sched, HeapScheduler)


def test_run_kwargs_gates_stall_check_on_truncation():
    options = RunOptions(max_no_progress_events=100)
    assert options.run_kwargs() == {
        "until": None,
        "check_stall": True,
        "max_no_progress_events": 100,
    }
    assert options.run_kwargs(until=5.0)["check_stall"] is False
    assert RunOptions(check_stall=False).run_kwargs()["check_stall"] is False


# ----------------------------------------------------------------------
# the deprecation shim
# ----------------------------------------------------------------------
def test_resolve_warns_exactly_once_even_with_both_legacy_kwargs():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        options, registry, recorder = resolve_run_options(
            None, MetricsRegistry(), TimelineRecorder()
        )
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert "RunOptions" in str(deprecations[0].message)
    assert options.metrics and options.timeline
    assert registry is not None and recorder is not None


def test_resolve_without_legacy_kwargs_is_silent():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        options, registry, recorder = resolve_run_options(
            RunOptions(metrics=True)
        )
    assert not [w for w in caught if w.category is DeprecationWarning]
    assert isinstance(registry, MetricsRegistry)
    assert recorder is None


def test_resolve_keeps_caller_owned_instruments():
    mine = MetricsRegistry()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        options, registry, _ = resolve_run_options(RunOptions(), obs=mine)
    assert registry is mine
    assert options.metrics  # folded in so snapshots are taken


def test_legacy_and_options_pipelines_produce_identical_runs():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = characterize_shared_memory(
            create_app("1d-fft", n=16), obs=MetricsRegistry()
        )
    assert (
        len([w for w in caught if w.category is DeprecationWarning]) == 1
    )
    modern = characterize_shared_memory(
        create_app("1d-fft", n=16), options=RunOptions(metrics=True)
    )
    assert _normalized(legacy.log) == _normalized(modern.log)
    assert legacy.metrics is not None and modern.metrics is not None
    assert modern.registry is not None


# ----------------------------------------------------------------------
# the unified entry points
# ----------------------------------------------------------------------
def test_run_dynamic_by_name_and_scheduler_equivalence():
    cal = run_dynamic("1d-fft", params={"n": 16})
    heap = run_dynamic("1d-fft", params={"n": 16}, options=RunOptions(scheduler="heap"))
    assert _normalized(cal.log) == _normalized(heap.log)
    assert cal.characterization.strategy == "dynamic"


def test_run_static_by_name():
    run = run_static("3d-fft", params={"n": 8}, options=RunOptions(timeline=True))
    assert run.characterization.strategy == "static"
    assert run.trace is not None
    assert run.timeline is not None


def test_run_rejects_wrong_category():
    with pytest.raises(TypeError, match="run_"):
        run_static("1d-fft", params={"n": 16})
    with pytest.raises(ValueError, match="params"):
        run_dynamic(create_app("1d-fft", n=16), params={"n": 32})


def test_run_synthetic_and_measure_load_point_honor_scheduler():
    run = run_dynamic("1d-fft", params={"n": 16})
    logs = {
        scheduler: run_synthetic(
            run.characterization,
            messages_per_source=10,
            options=RunOptions(scheduler=scheduler),
        )
        for scheduler in ("calendar", "heap")
    }
    assert _normalized(logs["calendar"]) == _normalized(logs["heap"])
    points = {
        scheduler: measure_load_point(
            run.characterization,
            messages_per_source=10,
            options=RunOptions(scheduler=scheduler),
        ).point
        for scheduler in ("calendar", "heap")
    }
    assert points["calendar"] == points["heap"]


# ----------------------------------------------------------------------
# sweep cells and the CLI flag group
# ----------------------------------------------------------------------
def test_cell_spec_carries_options_without_breaking_flagless_keys():
    from repro.sweep.grid import CellSpec, make_grid

    flagless = make_grid(apps=["1d-fft"]).expand()[0]
    assert flagless.options is None
    assert '"options"' not in flagless.canonical_json()
    assert CellSpec.from_dict(flagless.as_dict()) == flagless

    pinned = make_grid(
        apps=["1d-fft"], options=RunOptions(scheduler="heap")
    ).expand()[0]
    assert pinned.options == RunOptions(scheduler="heap")
    assert '"options"' in pinned.canonical_json()
    assert CellSpec.from_dict(pinned.as_dict()) == pinned
    # Different kernel knobs must never alias in the result cache.
    assert pinned.canonical_json() != flagless.canonical_json()


def test_cli_instrumentation_flags_shared_across_subcommands():
    from repro.cli import build_parser

    parser = build_parser()
    for argv in (
        ["characterize", "1d-fft", "--scheduler", "heap", "--max-no-progress", "9"],
        ["validate", "1d-fft", "--scheduler", "heap", "--max-no-progress", "9"],
        ["sweep", "run", "--app", "1d-fft", "--scheduler", "heap",
         "--max-no-progress", "9"],
        ["sweep", "status", "--app", "1d-fft", "--scheduler", "heap",
         "--max-no-progress", "9"],
    ):
        args = parser.parse_args(argv)
        assert args.scheduler == "heap"
        assert args.max_no_progress == 9
    with pytest.raises(SystemExit):
        parser.parse_args(["characterize", "1d-fft", "--scheduler", "fifo"])


def test_cli_flags_reach_the_grid_cells():
    from repro.cli import _grid_from_args, build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["sweep", "status", "--app", "1d-fft", "--scheduler", "heap"]
    )
    cell = _grid_from_args(args).expand()[0]
    assert cell.options is not None and cell.options.scheduler == "heap"
