"""Property tests: the calendar fast path equals the heap oracle.

The fast kernel (``scheduler="calendar"`` plus the inlined
``steady_clock`` dispatch) must reproduce the legacy heap scheduler's
observable behaviour exactly: the same events fire in the same order
at the same times, processes end in the same states, and a mesh run
produces a bit-identical activity log.  Hypothesis drives randomized
process programs -- tie-prone quantized holds, contended facilities,
paired mailbox handoffs, events -- through both schedulers and compares
the full execution trails.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mesh.config import MeshConfig
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.simkernel import (
    Facility,
    Mailbox,
    SimEvent,
    Simulator,
    hold,
    receive,
    release,
    request,
    send,
    wait,
)

#: Quantized delays (multiples of 0.25, including 0) make simultaneous
#: events the common case, which is exactly where a scheduler's
#: tie-break order can silently diverge.
gaps = st.integers(min_value=0, max_value=8).map(lambda k: k * 0.25)


def _run_program(scheduler, num_pairs, extra_holds, sender_plans, walker_plans):
    """Execute one randomized program; returns its observable trail.

    ``sender_plans`` is one list of (gap, use_facility, service) per
    sender; each sender ships its plan through a mailbox its receiver
    drains (so every receive matches a send and the program always
    terminates).  ``walker_plans`` are standalone processes doing
    facility churn and holds.  The trail records every resume point:
    (clock, process name, step tag).
    """
    sim = Simulator(scheduler=scheduler)
    trail = []
    boxes = [Mailbox(sim, name=f"box{i}") for i in range(num_pairs)]
    channel = Facility(sim, name="channel")
    gate = SimEvent(sim, name="gate")

    def sender(idx, plan):
        box = boxes[idx]
        for n, (gap, use_facility, service) in enumerate(plan):
            yield hold(gap)
            trail.append((sim.now, f"send{idx}", n))
            if use_facility:
                yield request(channel)
                yield hold(service)
                yield release(channel)
            yield send(box, (idx, n))

    def receiver(idx, count):
        box = boxes[idx]
        for n in range(count):
            message = yield receive(box)
            trail.append((sim.now, f"recv{idx}", message))

    def walker(idx, plan):
        # The first walker opens the gate others may wait on.
        if idx == 0:
            yield hold(0.5)
            gate.set()
        elif idx % 2 == 1:
            yield wait(gate)
            trail.append((sim.now, f"walk{idx}", "gated"))
        for n, gap in enumerate(plan):
            yield hold(gap)
            yield request(channel)
            trail.append((sim.now, f"walk{idx}", n))
            yield release(channel)

    for idx, plan in enumerate(sender_plans):
        sim.process(sender(idx, plan), name=f"send{idx}")
        sim.process(receiver(idx, len(plan)), name=f"recv{idx}")
    for idx, plan in enumerate(walker_plans):
        sim.process(walker(idx, plan), name=f"walk{idx}")
    for n, gap in enumerate(extra_holds):

        def lone(n=n, gap=gap):
            yield hold(gap)
            trail.append((sim.now, "lone", n))

        sim.process(lone(), name=f"lone{n}")

    final = sim.run()
    states = sorted((p.name, p.state.name) for p in sim.processes)
    return trail, final, sim.events_fired, states


@settings(max_examples=60, deadline=None)
@given(
    sender_plans=st.lists(
        st.lists(
            st.tuples(gaps, st.booleans(), gaps), min_size=1, max_size=6
        ),
        min_size=1,
        max_size=3,
    ),
    walker_plans=st.lists(
        st.lists(gaps, min_size=0, max_size=5), min_size=1, max_size=3
    ),
    extra_holds=st.lists(gaps, min_size=0, max_size=4),
)
def test_random_programs_identical_across_schedulers(
    sender_plans, walker_plans, extra_holds
):
    runs = {
        scheduler: _run_program(
            scheduler, len(sender_plans), extra_holds, sender_plans, walker_plans
        )
        for scheduler in ("calendar", "heap")
    }
    cal_trail, cal_final, cal_fired, cal_states = runs["calendar"]
    heap_trail, heap_final, heap_fired, heap_states = runs["heap"]
    assert cal_trail == heap_trail
    assert cal_final == heap_final
    assert cal_fired == heap_fired
    assert cal_states == heap_states


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_mesh_netlog_bit_identical_across_schedulers(seed):
    """Same seed, same mesh traffic: the activity logs must match
    record for record (fixed msg_ids keep the runs comparable)."""

    def run(scheduler):
        sim = Simulator(scheduler=scheduler)
        net = MeshNetwork(sim, MeshConfig(width=3, height=3))
        nodes = 9

        def source(src):
            for n in range(6):
                yield hold(((seed >> (n % 16)) & 7) * 0.25)
                yield from net.transfer(
                    NetworkMessage(
                        src=src,
                        dst=(src + 1 + (seed + n) % (nodes - 1)) % nodes,
                        length_bytes=(16, 64, 256)[(seed + src + n) % 3],
                        kind="p2p",
                        msg_id=src * 1000 + n,
                    )
                )

        for src in range(nodes):
            sim.process(source(src), name=f"src{src}")
        sim.run(check_stall=True)
        net.log.seal()
        return net.log.records, sim.now

    cal_records, cal_now = run("calendar")
    heap_records, heap_now = run("heap")
    assert cal_records == heap_records
    assert cal_now == heap_now


def test_env_var_selects_scheduler(monkeypatch):
    from repro.simkernel.engine_calendar import CalendarScheduler
    from repro.simkernel.engine_heap import HeapScheduler

    monkeypatch.setenv("REPRO_SCHEDULER", "heap")
    assert isinstance(Simulator()._sched, HeapScheduler)
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert isinstance(Simulator()._sched, CalendarScheduler)
    monkeypatch.delenv("REPRO_SCHEDULER")
    assert isinstance(Simulator()._sched, CalendarScheduler)
