"""End-to-end tests for the characterization service HTTP API.

Each test spins up a real :class:`~repro.serve.BackgroundService` on an
ephemeral port and talks actual HTTP to it.  Grid cells run through a
fast injected cell function (the full ``execute_cell`` path is covered
by the sweep runner tests and CI's service smoke), which also lets the
tests control timing — the single-flight coalescing test holds the
first job open until the second identical submission has attached.
"""

import http.client
import json
import os
import re
import threading
import time

import pytest

from repro.obs.heartbeat import HeartbeatWriter
from repro.serve import BackgroundService, JobManager, ServiceConfig, parse_sse_stream
from repro.sweep.cache import ResultCache

GRID = {
    "apps": ["1d-fft"],
    "app_params": {"1d-fft": {"n": 32}},
    "meshes": ["2x2"],
    "rate_scales": [1.0, 2.0],
    "messages_per_source": 10,
}


def quick_cell(spec_doc, heartbeat=None):
    """A fast fake cell: writes a heartbeat stream, returns a report."""
    if heartbeat is not None:
        writer = HeartbeatWriter(heartbeat, label=spec_doc["app"])
        writer.write_window(sim_time=1.0, events=10)
        writer.finish("done", sim_time=2.0, events=20)
    return {
        "schema": 1,
        "app": spec_doc["app"],
        "mesh": spec_doc["mesh"],
        "messages": 5,
        "mean_latency": 1.0,
    }


class Client:
    """A tiny keep-alive HTTP client against the background service."""

    def __init__(self, service):
        self.host = service.service.config.host
        self.port = service.port

    def request(self, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=10)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload, headers=headers or {})
            response = conn.getresponse()
            return response.status, json.loads(response.read().decode()), dict(
                response.getheaders()
            )
        finally:
            conn.close()

    def get(self, path, headers=None):
        return self.request("GET", path, headers=headers)

    def post(self, path, body, headers=None):
        return self.request("POST", path, body=body, headers=headers)

    def poll_job(self, job_id, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc, _ = self.get(f"/v1/jobs/{job_id}")
            assert status == 200
            if doc["state"] in ("done", "failed"):
                return doc
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not settle within {timeout}s")


@pytest.fixture
def service(tmp_path):
    manager = JobManager(
        str(tmp_path / "state"),
        ResultCache(str(tmp_path / "cache")),
        cell_fn=quick_cell,
    )
    config = ServiceConfig(
        port=0,
        state_dir=str(tmp_path / "state"),
        cache_dir=str(tmp_path / "cache"),
        rate=0.0,  # rate limiting has its own tests
        poll_interval=0.02,
    )
    with BackgroundService(config, manager=manager) as svc:
        yield svc


class TestRouting:
    def test_root_lists_endpoints(self, service):
        status, doc, _ = Client(service).get("/")
        assert status == 200
        assert doc["service"] == "repro-serve"
        assert any("POST /v1/jobs" in e for e in doc["endpoints"])

    def test_healthz(self, service):
        status, doc, _ = Client(service).get("/v1/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["jobs"] == {}

    def test_unknown_route_404(self, service):
        status, doc, _ = Client(service).get("/v1/nope")
        assert status == 404
        assert "error" in doc

    def test_wrong_method_405(self, service):
        status, doc, _ = Client(service).request("DELETE", "/v1/jobs")
        assert status == 405

    def test_unknown_job_404(self, service):
        status, doc, _ = Client(service).get("/v1/jobs/jdeadbeef")
        assert status == 404

    def test_unknown_result_404(self, service):
        status, doc, _ = Client(service).get("/v1/results/" + "0" * 64)
        assert status == 404


class TestValidation:
    def test_non_json_body_400(self, service):
        client = Client(service)
        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        conn.request("POST", "/v1/jobs", body=b"not json")
        response = conn.getresponse()
        assert response.status == 400
        assert "JSON" in json.loads(response.read().decode())["error"]
        conn.close()

    def test_spec_without_grid_or_trace_400(self, service):
        status, doc, _ = Client(service).post("/v1/jobs", {"what": 1})
        assert status == 400
        assert "grid" in doc["error"] and "trace" in doc["error"]

    def test_invalid_grid_400(self, service):
        bad = dict(GRID, apps=["no-such-app"])
        status, doc, _ = Client(service).post("/v1/jobs", {"grid": bad})
        assert status == 400
        assert "no-such-app" in doc["error"]

    def test_cell_cap_400(self, service):
        service.manager.max_cells = 1
        status, doc, _ = Client(service).post("/v1/jobs", {"grid": GRID})
        assert status == 400
        assert doc["limit"] == 1 and doc["cells"] == 2

    def test_oversize_body_413(self, service):
        service.service.config.max_body = 64
        status, doc, _ = Client(service).post("/v1/jobs", {"grid": GRID})
        assert status == 413
        assert doc["limit"] == 64

    def test_empty_trace_400(self, service):
        status, doc, _ = Client(service).post("/v1/jobs", {"trace": "  "})
        assert status == 400
        assert "empty" in doc["error"]


class TestJobLifecycle:
    def test_grid_job_end_to_end(self, service):
        client = Client(service)
        status, job, _ = client.post("/v1/jobs", {"grid": GRID})
        assert status == 201
        assert job["state"] == "queued" and not job["coalesced_submission"]
        doc = client.poll_job(job["id"])
        assert doc["state"] == "done"
        assert doc["result"]["computed"] == 2
        assert doc["result"]["cached"] == 0
        assert doc["health"]["verdict"] == "healthy"
        # Every cell's artifact is fetchable by its content address.
        for row in doc["result"]["rows"]:
            status, artifact, _ = client.get(f"/v1/results/{row['key']}")
            assert status == 200
            assert artifact["app"] == "1d-fft"
        # The job shows up in the listing.
        status, listing, _ = client.get("/v1/jobs")
        assert [j["id"] for j in listing["jobs"]] == [job["id"]]
        assert listing["counts"] == {"done": 1}

    def test_second_identical_submission_all_cached(self, service):
        client = Client(service)
        _, first, _ = client.post("/v1/jobs", {"grid": GRID})
        client.poll_job(first["id"])
        executions_before = service.manager.executions
        status, second, _ = client.post("/v1/jobs", {"grid": GRID})
        assert status == 201  # first finished, so this is a new job...
        doc = client.poll_job(second["id"])
        assert doc["result"]["computed"] == 0  # ...but costs no simulation
        assert doc["result"]["cached"] == 2
        assert service.manager.executions == executions_before

    def test_job_failure_isolated_and_diagnosed(self, service):
        def failing_cell(spec_doc, heartbeat=None):
            raise RuntimeError("injected cell failure")

        service.manager.cell_fn = failing_cell
        service.manager.retries = 0
        client = Client(service)
        _, job, _ = client.post("/v1/jobs", {"grid": GRID})
        doc = client.poll_job(job["id"])
        assert doc["state"] == "failed"
        assert doc["result"]["failed"] == 2
        assert doc["health"]["verdict"] == "problems"
        assert any("injected cell failure" in line for line in doc["health"]["lines"])
        # A failed job must not poison the service.
        status, health, _ = client.get("/v1/healthz")
        assert status == 200 and health["status"] == "ok"

    def test_trace_job(self, service, tmp_path):
        from repro.core import characterize_message_passing
        from repro.apps import create_app

        run = characterize_message_passing(create_app("3d-fft", n=8))
        csv_path = str(tmp_path / "trace.csv")
        run.log.write_csv(csv_path)
        with open(csv_path) as handle:
            text = handle.read()
        client = Client(service)
        status, job, _ = client.post(
            "/v1/jobs", {"trace": text, "label": "uploaded-fft"}
        )
        assert status == 201
        doc = client.poll_job(job["id"])
        assert doc["state"] == "done"
        assert doc["result"]["cached"] is False
        status, artifact, _ = client.get(f"/v1/results/{doc['result']['key']}")
        assert status == 200
        assert artifact["app"] == "uploaded-fft"
        assert artifact["strategy"] == "uploaded-trace"
        assert artifact["messages"] > 0
        # Identical upload: served straight from cache, no re-analysis.
        _, again, _ = client.post("/v1/jobs", {"trace": text})
        doc2 = client.poll_job(again["id"])
        assert doc2["result"]["cached"] is True
        assert doc2["result"]["key"] == doc["result"]["key"]


class TestSingleFlight:
    def test_concurrent_identical_submissions_coalesce(self, service):
        release = threading.Event()
        executions = []

        def slow_cell(spec_doc, heartbeat=None):
            executions.append(spec_doc["rate_scale"])
            assert release.wait(10)
            return quick_cell(spec_doc, heartbeat=heartbeat)

        service.manager.cell_fn = slow_cell
        client = Client(service)
        _, first, _ = client.post("/v1/jobs", {"grid": GRID})
        # Wait until the first cell is actually executing.
        deadline = time.monotonic() + 5
        while not executions and time.monotonic() < deadline:
            time.sleep(0.01)
        assert executions
        status, second, _ = client.post("/v1/jobs", {"grid": GRID})
        assert status == 200  # attached, not created
        assert second["id"] == first["id"]
        assert second["coalesced_submission"] is True
        assert second["coalesced"] == 1
        release.set()
        doc = client.poll_job(first["id"])
        assert doc["state"] == "done"
        # Exactly one execution per cell despite two submissions.
        assert sorted(executions) == [1.0, 2.0]
        status, health, _ = client.get("/v1/healthz")
        assert health["coalesced"] == 1
        assert health["submissions"] == 2

    def test_different_grids_do_not_coalesce(self, service):
        client = Client(service)
        other = dict(GRID, rate_scales=[3.0])
        _, a, _ = client.post("/v1/jobs", {"grid": GRID})
        _, b, _ = client.post("/v1/jobs", {"grid": other})
        assert a["id"] != b["id"]
        assert b["coalesced_submission"] is False


class TestRateLimit:
    def test_429_with_retry_after(self, tmp_path):
        manager = JobManager(
            str(tmp_path / "state"),
            ResultCache(str(tmp_path / "cache")),
            cell_fn=quick_cell,
        )
        config = ServiceConfig(
            port=0,
            state_dir=str(tmp_path / "state"),
            cache_dir=str(tmp_path / "cache"),
            rate=0.001,
            burst=2,
        )
        with BackgroundService(config, manager=manager) as svc:
            client = Client(svc)
            headers = {"X-Client": "tenant-a"}
            status1, _, _ = client.post("/v1/jobs", {"grid": GRID}, headers=headers)
            grid2 = dict(GRID, rate_scales=[9.0])
            status2, _, _ = client.post("/v1/jobs", {"grid": grid2}, headers=headers)
            grid3 = dict(GRID, rate_scales=[10.0])
            status3, doc, resp_headers = client.post(
                "/v1/jobs", {"grid": grid3}, headers=headers
            )
            assert (status1, status2) == (201, 201)
            assert status3 == 429
            # RFC 9110 Retry-After delta-seconds is integral: the header
            # must be pure digits (a fractional "1000.0" makes strict
            # clients ignore it), and the JSON body must carry the same
            # integral value, not the limiter's raw float.
            assert re.fullmatch(r"[0-9]+", resp_headers["Retry-After"])
            assert int(resp_headers["Retry-After"]) >= 1
            assert isinstance(doc["retry_after"], int)
            assert doc["retry_after"] >= 1
            # A different client identity has its own bucket.
            status4, _, _ = client.post(
                "/v1/jobs", {"grid": grid3}, headers={"X-Client": "tenant-b"}
            )
            assert status4 == 201
            _, health, _ = client.get("/v1/healthz")
            assert health["throttled"] == 1


class TestEvents:
    def test_sse_stream_heartbeats_then_end(self, service):
        client = Client(service)
        _, job, _ = client.post("/v1/jobs", {"grid": GRID})
        conn = http.client.HTTPConnection(client.host, client.port, timeout=15)
        conn.request("GET", f"/v1/jobs/{job['id']}/events")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"
        events = []
        for event, doc in parse_sse_stream(response):
            events.append((event, doc))
            if event == "end":
                break
        conn.close()
        kinds = [event for event, _ in events]
        assert kinds[0] == "job"
        assert kinds[-1] == "end"
        assert "heartbeat" in kinds
        heartbeats = [doc for event, doc in events if event == "heartbeat"]
        assert any(doc.get("status") == "done" for doc in heartbeats)
        end = events[-1][1]
        assert end["state"] == "done" and end["job"] == job["id"]

    def test_sse_unknown_job_404(self, service):
        status, _, _ = Client(service).get("/v1/jobs/jnope/events")
        assert status == 404


class TestRestartResume:
    def test_incomplete_job_resumes_after_restart(self, tmp_path):
        state = str(tmp_path / "state")
        cache_dir = str(tmp_path / "cache")
        blocker = threading.Event()

        def stuck_cell(spec_doc, heartbeat=None):
            blocker.wait(30)
            return quick_cell(spec_doc, heartbeat=heartbeat)

        manager = JobManager(
            state, ResultCache(cache_dir), cell_fn=stuck_cell
        )
        config = ServiceConfig(
            port=0, state_dir=state, cache_dir=cache_dir, rate=0.0
        )
        with BackgroundService(config, manager=manager) as svc:
            client = Client(svc)
            _, job, _ = client.post("/v1/jobs", {"grid": GRID})
            job_id = job["id"]
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                _, doc, _ = client.get(f"/v1/jobs/{job_id}")
                if doc["state"] == "running":
                    break
                time.sleep(0.01)
            assert doc["state"] == "running"
        # "Kill": the service went down mid-job (the stuck cell is
        # cancelled by shutdown; the job reverts to queued on disk).
        blocker.set()
        manager.shutdown(wait=True)
        manager2 = JobManager(
            state, ResultCache(cache_dir), cell_fn=quick_cell
        )
        with BackgroundService(config, manager=manager2) as svc2:
            resumed = manager2.resume()
            assert resumed == 1
            doc = Client(svc2).poll_job(job_id)
            assert doc["state"] == "done"
            assert doc["result"]["computed"] + doc["result"]["cached"] == 2

    def test_killed_running_state_resumes(self, tmp_path):
        # Simulate a hard kill: a job document left in state=running
        # (no process ever transitions it) must be picked up by resume.
        state = str(tmp_path / "state")
        cache_dir = str(tmp_path / "cache")
        manager = JobManager(state, ResultCache(cache_dir), cell_fn=quick_cell)
        doc, coalesced = manager.submit_grid(GRID)
        job_id = doc["id"]
        manager.shutdown(wait=True)
        # Forge the crash: whatever state the doc ended in, rewrite it
        # as mid-flight.
        crashed = manager.index.load(job_id)
        crashed["state"] = "running"
        crashed.pop("result", None)
        manager.index.save(crashed)
        manager2 = JobManager(state, ResultCache(cache_dir), cell_fn=quick_cell)
        assert manager2.resume() == 1
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            doc = manager2.index.load(job_id)
            if doc["state"] in ("done", "failed"):
                break
            time.sleep(0.02)
        assert doc["state"] == "done"
        manager2.shutdown(wait=True)


class TestKeepAlive:
    def test_many_requests_one_connection(self, service):
        conn = http.client.HTTPConnection(
            service.service.config.host, service.port, timeout=10
        )
        try:
            for _ in range(20):
                conn.request("GET", "/v1/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()
        assert service.service.stats.requests >= 20
