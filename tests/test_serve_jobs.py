"""Unit tests for the service's non-HTTP layers.

The HTTP surface has its own end-to-end suite
(``test_serve_api.py``); these tests pin down the pieces underneath
it: the crash-safe job index, the token-bucket rate limiter (driven by
a fake clock), job digesting, and the request-parsing helpers.
"""

import asyncio
import json
import os

import pytest

from repro.serve import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    HttpError,
    JobIndex,
    JobManager,
    RateLimiter,
    parse_sse_stream,
)
from repro.serve.api import (
    error_response,
    json_response,
    read_request,
    split_path,
    sse_event,
)
from repro.sweep.cache import ResultCache
from repro.sweep.grid import GridSpec


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_doc(job_id, state=QUEUED, created=1.0, **extra):
    doc = {
        "schema": 1,
        "kind": "serve-job",
        "id": job_id,
        "digest": "d" * 64,
        "state": state,
        "created": created,
    }
    doc.update(extra)
    return doc


class TestJobIndex:
    def test_round_trip(self, tmp_path):
        index = JobIndex(str(tmp_path / "jobs"))
        doc = make_doc("j1", result={"cells": 3})
        index.save(doc)
        assert index.load("j1") == doc

    def test_missing_and_corrupt_load_as_none(self, tmp_path):
        index = JobIndex(str(tmp_path / "jobs"))
        assert index.load("nope") is None
        index.save(make_doc("j1"))
        with open(index.path_for("j1"), "w") as handle:
            handle.write("{torn")
        assert index.load("j1") is None

    def test_all_jobs_sorted_by_creation(self, tmp_path):
        index = JobIndex(str(tmp_path / "jobs"))
        index.save(make_doc("jb", created=2.0))
        index.save(make_doc("ja", created=1.0))
        index.save(make_doc("jc", created=3.0))
        assert [d["id"] for d in index.all_jobs()] == ["ja", "jb", "jc"]

    def test_incomplete_filters_terminal(self, tmp_path):
        index = JobIndex(str(tmp_path / "jobs"))
        index.save(make_doc("j1", state=QUEUED, created=1.0))
        index.save(make_doc("j2", state=RUNNING, created=2.0))
        index.save(make_doc("j3", state=DONE, created=3.0))
        index.save(make_doc("j4", state=FAILED, created=4.0))
        assert [d["id"] for d in index.incomplete()] == ["j1", "j2"]
        assert index.counts() == {"queued": 1, "running": 1, "done": 1, "failed": 1}

    def test_save_is_atomic_no_temp_litter(self, tmp_path):
        index = JobIndex(str(tmp_path / "jobs"))
        for i in range(5):
            index.save(make_doc("j1", created=float(i)))
        names = os.listdir(str(tmp_path / "jobs"))
        assert names == ["j1.json"]

    def test_empty_directory(self, tmp_path):
        index = JobIndex(str(tmp_path / "missing"))
        assert index.all_jobs() == []
        assert index.counts() == {}


class TestRateLimiter:
    def test_burst_then_deny(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=3, clock=clock)
        assert [limiter.allow("c") for _ in range(4)] == [True, True, True, False]

    def test_refill_at_rate(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=2, clock=clock)
        assert limiter.allow("c") and limiter.allow("c")
        assert not limiter.allow("c")
        clock.advance(0.5)  # 2/s * 0.5s = exactly one token back
        assert limiter.allow("c")
        assert not limiter.allow("c")

    def test_retry_after_is_precise(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=0.5, burst=1, clock=clock)
        assert limiter.allow("c")
        assert not limiter.allow("c")
        assert limiter.retry_after("c") == pytest.approx(2.0)
        clock.advance(1.0)
        assert limiter.retry_after("c") == pytest.approx(1.0)
        clock.advance(1.0)
        assert limiter.retry_after("c") == 0.0
        assert limiter.allow("c")

    def test_clients_are_independent(self):
        limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock())
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")

    def test_disabled_when_rate_nonpositive(self):
        limiter = RateLimiter(rate=0.0, burst=1, clock=FakeClock())
        assert all(limiter.allow("c") for _ in range(100))
        assert limiter.retry_after("c") == 0.0

    def test_bucket_never_exceeds_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=10.0, burst=2, clock=clock)
        assert limiter.allow("c")
        clock.advance(3600.0)  # a long idle must not bank 36000 tokens
        results = [limiter.allow("c") for _ in range(3)]
        assert results == [True, True, False]

    def test_idle_buckets_swept(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
        for i in range(50):
            limiter.allow(f"one-shot-{i}")
        assert len(limiter._buckets) == 50
        clock.advance(301.0)
        limiter.allow("survivor")
        assert set(limiter._buckets) == {"survivor"}

    def test_burst_must_be_positive(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0)


class TestDigests:
    def make_manager(self, tmp_path, name="state"):
        return JobManager(
            str(tmp_path / name),
            ResultCache(str(tmp_path / "cache"), fingerprint="f" * 16),
        )

    def test_grid_digest_is_stable_and_order_insensitive(self, tmp_path):
        manager = self.make_manager(tmp_path)
        a = GridSpec.from_dict(
            {
                "apps": ["1d-fft"],
                "meshes": ["2x2"],
                "rate_scales": [1.0, 2.0],
                "messages_per_source": 10,
            }
        )
        b = GridSpec.from_dict(
            {
                "messages_per_source": 10,
                "rate_scales": [1.0, 2.0],
                "meshes": ["2x2"],
                "apps": ["1d-fft"],
            }
        )
        assert manager.digest_for_grid(a) == manager.digest_for_grid(b)

    def test_grid_digest_differs_from_cell_keys(self, tmp_path):
        # The job digest must never collide with a cell's cache key,
        # or GET /v1/results/{digest} could serve a job spec as a report.
        manager = self.make_manager(tmp_path)
        grid = GridSpec.from_dict(
            {"apps": ["1d-fft"], "meshes": ["2x2"], "messages_per_source": 10}
        )
        cell_keys = {
            manager.cache.key_for(cell.canonical_json())
            for cell in grid.expand()
        }
        assert manager.digest_for_grid(grid) not in cell_keys

    def test_trace_digest_depends_on_content(self, tmp_path):
        manager = self.make_manager(tmp_path)
        assert manager.digest_for_trace(b"a,b,c") == manager.digest_for_trace(b"a,b,c")
        assert manager.digest_for_trace(b"a,b,c") != manager.digest_for_trace(b"x,y,z")

    def test_digest_changes_with_code_fingerprint(self, tmp_path):
        old = JobManager(
            str(tmp_path / "s1"),
            ResultCache(str(tmp_path / "c1"), fingerprint="old-code"),
        )
        new = JobManager(
            str(tmp_path / "s2"),
            ResultCache(str(tmp_path / "c2"), fingerprint="new-code"),
        )
        grid = GridSpec.from_dict(
            {"apps": ["1d-fft"], "meshes": ["2x2"], "messages_per_source": 10}
        )
        assert old.digest_for_grid(grid) != new.digest_for_grid(grid)
        old.shutdown()
        new.shutdown()


class TestHttpHelpers:
    def run(self, coro):
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(coro)
        finally:
            loop.close()

    def parse(self, raw, max_body=1000):
        async def _go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader, max_body)

        return self.run(_go())

    def test_parse_post_with_body(self):
        body = json.dumps({"grid": {}}).encode()
        raw = (
            b"POST /v1/jobs?x=1 HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"X-Client: tenant\r\n\r\n" + body
        )
        request = self.parse(raw)
        assert request.method == "POST"
        assert request.path == "/v1/jobs"
        assert request.query == {"x": "1"}
        assert request.client == "tenant"
        assert request.json() == {"grid": {}}

    def test_eof_returns_none(self):
        assert self.parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            self.parse(b"GARBAGE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversize_declared_body_413(self):
        with pytest.raises(HttpError) as excinfo:
            self.parse(b"POST / HTTP/1.1\r\nContent-Length: 5000\r\n\r\n", max_body=10)
        assert excinfo.value.status == 413
        assert excinfo.value.as_dict()["limit"] == 10

    def test_chunked_upload_411(self):
        with pytest.raises(HttpError) as excinfo:
            self.parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 411

    def test_truncated_body_400(self):
        with pytest.raises(HttpError) as excinfo:
            self.parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert excinfo.value.status == 400

    def test_negative_content_length_400(self):
        with pytest.raises(HttpError) as excinfo:
            self.parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert excinfo.value.status == 400

    def test_response_framing(self):
        raw = json_response(201, {"ok": True})
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 201 Created")
        assert f"Content-Length: {len(payload)}".encode() in head
        assert json.loads(payload) == {"ok": True}

    def test_error_response_retry_after_rounds_up(self):
        raw = error_response(HttpError(429, "slow down", retry_after=0.2))
        assert b"Retry-After: 1\r\n" in raw
        raw = error_response(HttpError(429, "slow down", retry_after=2.3))
        assert b"Retry-After: 3\r\n" in raw

    def test_sse_round_trip(self):
        frames = sse_event("job", {"id": "j1"}) + sse_event("end", {"state": "done"})
        events = list(parse_sse_stream(frames.decode().splitlines(True)))
        assert events == [("job", {"id": "j1"}), ("end", {"state": "done"})]

    def test_split_path(self):
        assert split_path("/v1/jobs/abc/events") == ("v1", "jobs", "abc", "events")
        assert split_path("/") == ()
