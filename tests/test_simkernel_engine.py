"""Unit tests for the process-oriented simulation kernel."""

import pytest

from repro.simkernel import (
    Facility,
    Mailbox,
    SimEvent,
    SimulationError,
    Simulator,
    hold,
    passivate,
    receive,
    release,
    request,
    send,
    wait,
)
from repro.simkernel.engine import ProcessState


def test_hold_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield hold(5.0)
        seen.append(sim.now)
        yield hold(2.5)
        seen.append(sim.now)

    sim.process(proc(), name="p")
    sim.run()
    assert seen == [5.0, 7.5]


def test_negative_hold_rejected():
    with pytest.raises(SimulationError):
        hold(-1.0)


def test_negative_schedule_delay_raises_valueerror_naming_delay():
    from repro.simkernel import InvalidDelayError

    sim = Simulator()
    with pytest.raises(InvalidDelayError, match=r"-0\.25"):
        sim.schedule(-0.25, lambda: None)
    # InvalidDelayError is both a kernel error and an invalid argument.
    with pytest.raises(ValueError, match=r"delay=-1\.5"):
        sim.schedule(-1.5, lambda: None)
    assert issubclass(InvalidDelayError, SimulationError)
    assert issubclass(InvalidDelayError, ValueError)


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_negative_step_delay_rejected_inside_run(scheduler):
    from repro.simkernel import InvalidDelayError

    sim = Simulator(scheduler=scheduler)

    def proc():
        sim._schedule_step(sim.current_process, None, delay=-2.0)
        yield hold(1.0)

    sim.process(proc(), name="p")
    with pytest.raises(InvalidDelayError, match=r"delay=-2\.0"):
        sim.run()


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def make(tag):
        def proc():
            yield hold(1.0)
            order.append(tag)
        return proc

    for tag in ("a", "b", "c"):
        sim.process(make(tag)(), name=tag)
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()

    def proc():
        yield hold(100.0)

    sim.process(proc(), name="p")
    final = sim.run(until=10.0)
    assert final == 10.0
    assert sim.now == 10.0


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    final = sim.run(until=42.0)
    assert final == 42.0


def test_process_result_via_join():
    sim = Simulator()
    results = []

    def worker():
        yield hold(3.0)
        return 99

    def boss():
        w = sim.process(worker(), name="w")
        value = yield from w.join()
        results.append((sim.now, value))

    sim.process(boss(), name="boss")
    sim.run()
    assert results == [(3.0, 99)]


def test_join_on_finished_process_returns_immediately():
    sim = Simulator()
    results = []

    def worker():
        yield hold(1.0)
        return "done"

    def boss(w):
        yield hold(5.0)
        value = yield from w.join()
        results.append(value)

    w = sim.process(worker(), name="w")
    sim.process(boss(w), name="boss")
    sim.run()
    assert results == ["done"]


def test_yield_unknown_command_raises():
    sim = Simulator()

    def bad():
        yield "nonsense"

    sim.process(bad(), name="bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_exception_in_process_propagates():
    sim = Simulator()

    def bad():
        yield hold(1.0)
        raise ValueError("boom")

    proc = sim.process(bad(), name="bad")
    with pytest.raises(ValueError):
        sim.run()
    assert proc.state is ProcessState.FAILED


def test_passivate_and_activate():
    sim = Simulator()
    seen = []

    def sleeper():
        value = yield passivate()
        seen.append((sim.now, value))

    def waker(target):
        yield hold(7.0)
        target.activate("wake")

    target = sim.process(sleeper(), name="sleeper")
    sim.process(waker(target), name="waker")
    sim.run()
    assert seen == [(7.0, "wake")]


def test_stop_halts_run():
    sim = Simulator()
    seen = []

    def proc():
        while True:
            yield hold(1.0)
            seen.append(sim.now)
            if sim.now >= 3.0:
                sim.stop()

    sim.process(proc(), name="p")
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_schedule_into_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_active_process_count():
    sim = Simulator()

    def proc():
        yield hold(1.0)

    sim.process(proc(), name="a")
    sim.process(proc(), name="b")
    assert sim.active_process_count == 2
    sim.run()
    assert sim.active_process_count == 0


class TestSimEvent:
    def test_wait_then_set(self):
        sim = Simulator()
        evt = SimEvent(sim, name="e")
        seen = []

        def waiter():
            value = yield wait(evt)
            seen.append((sim.now, value))

        def setter():
            yield hold(4.0)
            evt.set("hello")

        sim.process(waiter(), name="w")
        sim.process(setter(), name="s")
        sim.run()
        assert seen == [(4.0, "hello")]

    def test_wait_on_already_set_event_is_immediate(self):
        sim = Simulator()
        evt = SimEvent(sim, name="e")
        evt.set(7)
        seen = []

        def waiter():
            value = yield wait(evt)
            seen.append((sim.now, value))

        sim.process(waiter(), name="w")
        sim.run()
        assert seen == [(0.0, 7)]

    def test_clear_makes_waiters_block_again(self):
        sim = Simulator()
        evt = SimEvent(sim, name="e")
        evt.set()
        evt.clear()
        assert not evt.is_set

    def test_pulse_wakes_but_does_not_stick(self):
        sim = Simulator()
        evt = SimEvent(sim, name="e")
        seen = []

        def waiter():
            value = yield wait(evt)
            seen.append(value)

        def pulser():
            yield hold(1.0)
            evt.pulse("x")

        sim.process(waiter(), name="w")
        sim.process(pulser(), name="p")
        sim.run()
        assert seen == ["x"]
        assert not evt.is_set

    def test_waiter_count(self):
        sim = Simulator()
        evt = SimEvent(sim, name="e")

        def waiter():
            yield wait(evt)

        sim.process(waiter(), name="w1")
        sim.process(waiter(), name="w2")
        sim.run(until=0.5)
        assert evt.waiter_count == 2
        evt.set()
        sim.run()
        assert evt.waiter_count == 0


class TestFacility:
    def test_exclusive_use_serializes(self):
        sim = Simulator()
        fac = Facility(sim, name="f")
        spans = []
        sim.process(_facility_user(sim, fac, "a", spans), name="a")
        sim.process(_facility_user(sim, fac, "b", spans), name="b")
        sim.run()
        assert spans == [("a", 0.0, 10.0), ("b", 10.0, 20.0)]

    def test_multi_server(self):
        sim = Simulator()
        fac = Facility(sim, name="f", servers=2)
        spans = []
        for tag in ("a", "b", "c"):
            sim.process(_facility_user(sim, fac, tag, spans), name=tag)
        sim.run()
        # a and b run together; c waits for one of them.
        assert spans[0][1] == 0.0 and spans[1][1] == 0.0
        assert spans[2][1] == 10.0

    def test_utilization_accounting(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(5.0)
            yield hold(5.0)

        sim.process(user(), name="u")
        sim.run()
        assert fac.utilization() == pytest.approx(0.5)

    def test_release_without_hold_raises(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def bad():
            yield release(fac)

        sim.process(bad(), name="bad")
        with pytest.raises(SimulationError):
            sim.run()

    def test_mean_wait_time(self):
        sim = Simulator()
        fac = Facility(sim, name="f")
        spans = []
        sim.process(_facility_user(sim, fac, "a", spans), name="a")
        sim.process(_facility_user(sim, fac, "b", spans), name="b")
        sim.run()
        # a waits 0, b waits 10.
        assert fac.mean_wait_time() == pytest.approx(5.0)

    def test_zero_servers_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Facility(sim, servers=0)


def _facility_user(sim, fac, tag, spans):
    yield request(fac)
    start = sim.now
    yield hold(10.0)
    yield release(fac)
    spans.append((tag, start, sim.now))


class TestMailbox:
    def test_send_receive(self):
        sim = Simulator()
        box = Mailbox(sim, name="m")
        seen = []

        def producer():
            yield hold(2.0)
            yield send(box, "msg1")
            yield send(box, "msg2")

        def consumer():
            m1 = yield receive(box)
            m2 = yield receive(box)
            seen.append((sim.now, m1, m2))

        sim.process(consumer(), name="c")
        sim.process(producer(), name="p")
        sim.run()
        assert seen == [(2.0, "msg1", "msg2")]

    def test_receive_blocks_until_put(self):
        sim = Simulator()
        box = Mailbox(sim, name="m")
        seen = []

        def consumer():
            m = yield receive(box)
            seen.append((sim.now, m))

        sim.process(consumer(), name="c")
        sim.run(until=1.0)
        assert seen == []
        box.put("late")
        sim.run()
        assert seen == [(1.0, "late")]

    def test_fifo_order(self):
        sim = Simulator()
        box = Mailbox(sim, name="m")
        for i in range(5):
            box.put(i)
        got = []

        def consumer():
            for _ in range(5):
                got.append((yield receive(box)))

        sim.process(consumer(), name="c")
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_counters(self):
        sim = Simulator()
        box = Mailbox(sim, name="m")
        box.put(1)
        box.put(2)
        assert box.total_sent == 2
        assert box.pending == 2
        assert len(box) == 2


def test_random_streams_reproducible_and_independent():
    from repro.simkernel import RandomStreams

    a = RandomStreams(42)
    b = RandomStreams(42)
    assert a.stream("x").random() == b.stream("x").random()
    c = RandomStreams(42)
    assert c.stream("x").random() != c.stream("y").random()


def test_random_streams_reset():
    from repro.simkernel import RandomStreams

    streams = RandomStreams(7)
    first = streams.stream("s").random()
    streams.reset()
    assert streams.stream("s").random() == first
