"""Resource lifecycle and stall diagnosis regression tests.

Covers the failure semantics of the kernel: the clock-rewind clamp,
multi-server double-acquire accounting, exception-safe cleanup in
``Facility.use`` and ``MeshNetwork.transfer``, the end-of-run leak
audit, the deadlock detector and no-progress watchdog, sweep failure
classification, and the ``repro doctor`` CLI.
"""

import json

import pytest

from repro.cli import main
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetLogRecord, NetworkLog
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.simkernel import (
    DeadlockError,
    Facility,
    FacilityLeakError,
    Simulator,
    StallError,
    check_leaks,
    diagnose_stall,
    hold,
    release,
    request,
)
from repro.simkernel.engine import ProcessState
from repro.sweep import make_grid, run_sweep


# ----------------------------------------------------------------------
# clock semantics
# ----------------------------------------------------------------------
class TestClockRewind:
    def test_second_run_with_earlier_until_does_not_rewind(self):
        sim = Simulator()

        def proc():
            yield hold(100.0)

        sim.process(proc(), name="p")
        assert sim.run() == 100.0
        # A stale horizon must not move the clock backwards.
        assert sim.run(until=10.0) == 100.0
        assert sim.now == 100.0

    def test_break_path_clamps_to_current_time(self):
        sim = Simulator()

        def proc():
            yield hold(100.0)

        sim.process(proc(), name="p")
        assert sim.run(until=10.0) == 10.0
        assert sim.run(until=5.0) == 10.0
        assert sim.now == 10.0

    def test_drain_path_still_advances_to_future_until(self):
        sim = Simulator()
        assert sim.run(until=42.0) == 42.0
        assert sim.run(until=7.0) == 42.0


# ----------------------------------------------------------------------
# multi-server accounting
# ----------------------------------------------------------------------
class TestDoubleAcquire:
    def test_one_process_holding_two_servers_releases_both(self):
        sim = Simulator()
        fac = Facility(sim, name="f", servers=2)
        stages = []

        def proc():
            yield request(fac)
            yield request(fac)
            stages.append(("held", fac.busy, dict(sim.processes[0].held)[fac]))
            yield hold(1.0)
            yield release(fac)
            stages.append(("after-one", fac.busy))
            yield release(fac)
            stages.append(("after-two", fac.busy))

        sim.process(proc(), name="p")
        sim.run()
        assert stages == [("held", 2, 2), ("after-one", 1), ("after-two", 0)]
        assert sim.leaked_facilities() == []

    def test_extra_release_still_rejected(self):
        sim = Simulator()
        fac = Facility(sim, name="f", servers=2)

        def proc():
            yield request(fac)
            yield release(fac)
            yield release(fac)

        sim.process(proc(), name="p")
        with pytest.raises(RuntimeError, match="does not hold"):
            sim.run()


# ----------------------------------------------------------------------
# exception-safe cleanup
# ----------------------------------------------------------------------
class TestUseCleanup:
    def test_shutdown_mid_hold_releases_the_server(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(100.0)

        proc = sim.process(user(), name="u")
        sim.run(until=10.0)
        assert fac.busy == 1
        terminated = sim.shutdown()
        assert proc in terminated
        assert proc.state is ProcessState.FAILED
        assert fac.busy == 0
        assert sim.leaked_facilities(include_live=True) == []

    def test_failure_mid_hold_releases_the_server(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(5.0)

        def saboteur():
            yield hold(1.0)
            raise RuntimeError("injected fault")

        sim.process(user(), name="u")
        sim.process(saboteur(), name="s")
        with pytest.raises(RuntimeError, match="injected fault"):
            sim.run()
        # The holder is still live (suspended); shutdown unwinds it.
        sim.shutdown()
        assert fac.busy == 0
        assert sim.leaked_facilities(include_live=True) == []


class TestTransferCleanup:
    def _network(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig(width=2, height=2))
        return sim, net

    def test_raising_delivery_handler_leaves_no_leaks(self):
        sim, net = self._network()

        def bad_handler(message, record):
            raise RuntimeError("handler blew up")

        net.register_handler(3, bad_handler)

        def sender(src, dst):
            yield from net.transfer(
                NetworkMessage(src=src, dst=dst, length_bytes=64, kind="data")
            )

        # Two overlapping transfers: one hits the raising handler while
        # the other is still holding channels mid-flight.
        sim.process(sender(0, 3), name="doomed")
        sim.process(sender(1, 2), name="bystander")
        with pytest.raises(RuntimeError, match="handler blew up"):
            sim.run()
        sim.shutdown()
        assert sim.leaked_facilities(include_live=True) == []
        assert net.in_flight == 0
        assert net.leaked_facilities(include_live=True) == []

    def test_shutdown_mid_transfer_restores_in_flight(self):
        sim, net = self._network()

        def sender():
            yield from net.transfer(
                NetworkMessage(src=0, dst=3, length_bytes=4096, kind="data")
            )

        sim.process(sender(), name="s")
        sim.run(until=net.config.injection_time / 2.0)
        assert net.in_flight == 1
        sim.shutdown()
        assert net.in_flight == 0
        assert sim.leaked_facilities(include_live=True) == []


# ----------------------------------------------------------------------
# leak audit
# ----------------------------------------------------------------------
class TestLeakAudit:
    def test_finish_while_holding_is_reported_and_raises(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def leaker():
            yield request(fac)
            # Finishes without releasing: an unfixable leak.

        proc = sim.process(leaker(), name="leaker")
        sim.run()
        leaks = sim.leaked_facilities()
        assert leaks == [(proc, fac, 1)]
        with pytest.raises(FacilityLeakError, match="leaker.*holds 1 server"):
            check_leaks(sim)

    def test_live_holders_not_reported_by_default(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(100.0)

        sim.process(user(), name="u")
        sim.run(until=10.0)
        assert sim.leaked_facilities() == []
        assert sim.leaked_facilities(include_live=True) != []
        sim.shutdown()


# ----------------------------------------------------------------------
# deadlock detection
# ----------------------------------------------------------------------
class TestDeadlockDetection:
    def test_adaptive_mesh_channel_ring_raises_with_cycle(self):
        sim = Simulator()
        net = MeshNetwork(
            sim,
            MeshConfig(width=2, height=2, routing="adaptive", virtual_channels=2),
        )
        # Well-formed adaptive transfers are deadlock-free by design, so
        # drive the network's channel facilities directly: a two-process
        # ring acquiring ch[0->1] and ch[1->3] in opposite orders.
        c01 = net.channel(0, 1)
        c13 = net.channel(1, 3)

        def grabber(first, second):
            yield request(first)
            yield hold(1.0)
            yield request(second)

        sim.process(grabber(c01, c13), name="east-first")
        sim.process(grabber(c13, c01), name="north-first")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(check_stall=True)
        error = excinfo.value
        assert set(error.cycle) == {"east-first", "north-first"}
        assert "wait-for cycle" in str(error)
        assert "east-first" in str(error) and "north-first" in str(error)
        assert "ch[0->1" in str(error) or "ch[1->3" in str(error)

    def test_self_deadlock_on_single_server_facility(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def greedy():
            yield request(fac)
            yield request(fac)  # single server: waits on itself forever

        sim.process(greedy(), name="greedy")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(check_stall=True)
        assert excinfo.value.cycle == ("greedy",)

    def test_clean_run_unaffected_by_check_stall(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(2.0)

        sim.process(user(), name="u")
        assert sim.run(check_stall=True) == 2.0

    def test_deadlock_error_pickles_with_cycle(self):
        import pickle

        error = DeadlockError("msg", cycle=("a", "b"))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, DeadlockError)
        assert clone.cycle == ("a", "b")
        assert str(clone) == "msg"

    def test_diagnose_stall_names_blocked_processes(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def holder():
            yield request(fac)
            yield hold(1.0)

        def waiter():
            yield request(fac)
            yield release(fac)

        sim.process(holder(), name="holder")
        sim.process(waiter(), name="waiter")
        sim.run(until=0.5)
        diagnosis = diagnose_stall(sim)
        assert [p.name for p in diagnosis.blocked] == ["waiter"]
        assert "waiter: waiting on Facility('f') held by 'holder'" in (
            diagnosis.describe()
        )
        sim.shutdown()


class TestWatchdog:
    def test_zero_delay_storm_raises_stall_error(self):
        sim = Simulator()

        def spinner():
            while True:
                yield hold(0.0)

        sim.process(spinner(), name="spinner")
        with pytest.raises(StallError, match="no simulated-time progress"):
            sim.run(max_no_progress_events=100)

    def test_watchdog_tolerates_progressing_runs(self):
        sim = Simulator()

        def ticker():
            for _ in range(500):
                yield hold(0.01)

        sim.process(ticker(), name="t")
        sim.run(max_no_progress_events=10)
        assert sim.now == pytest.approx(5.0)

    def test_bad_threshold_rejected(self):
        sim = Simulator()
        with pytest.raises(RuntimeError, match="max_no_progress_events"):
            sim.run(max_no_progress_events=0)


# ----------------------------------------------------------------------
# offered rate vs throughput
# ----------------------------------------------------------------------
class TestOfferedRate:
    def _saturated_log(self):
        log = NetworkLog()
        for i in range(10):
            log.add(
                NetLogRecord(
                    msg_id=i,
                    src=0,
                    dst=1,
                    length_bytes=64,
                    kind="data",
                    inject_time=float(i),
                    start_time=float(i),
                    deliver_time=109.0 if i == 9 else float(i + 1),
                    contention=0.0,
                    hops=1,
                )
            )
        return log

    def test_offered_rate_uses_injection_window(self):
        log = self._saturated_log()
        assert log.injection_span() == 9.0
        assert log.span() == 109.0
        # Offered load over the injection window, not the drain-heavy
        # full span; throughput keeps the full-span denominator.
        assert log.offered_rate() == pytest.approx(10.0 / 9.0)
        assert log.throughput() == pytest.approx(10.0 / 109.0)

    def test_degenerate_logs_report_zero(self):
        empty = NetworkLog()
        assert empty.offered_rate() == 0.0
        assert empty.throughput() == 0.0


# ----------------------------------------------------------------------
# sweep failure classification
# ----------------------------------------------------------------------
def _deadlocked_cell(doc):
    raise DeadlockError(
        "stall at t=5: 2 process(es) blocked\nwait-for cycle: a -> f (held by b)",
        cycle=("a", "b"),
    )


def _leaky_cell(doc):
    raise FacilityLeakError("1 leaked facility holding(s):\n  p still holds 1 server")


class TestSweepClassification:
    def _grid(self):
        return make_grid(
            apps=("1d-fft",),
            app_params={"1d-fft": {"n": 32}},
            meshes=("2x2",),
            messages_per_source=10,
        )

    def test_deadlock_cell_yields_structured_row(self):
        result = run_sweep(self._grid(), jobs=1, cache=None, cell_fn=_deadlocked_cell)
        (row,) = result.rows
        assert row["status"] == "deadlock"
        assert row["error"].startswith("DeadlockError:")
        assert any("wait-for cycle" in line for line in row["failure_log"])
        assert "wait-for cycle" in result.describe()

    def test_leak_cell_yields_structured_row(self):
        result = run_sweep(self._grid(), jobs=1, cache=None, cell_fn=_leaky_cell)
        (row,) = result.rows
        assert row["status"] == "leak"
        assert row["error"].startswith("FacilityLeakError:")
        assert any("still holds" in line for line in row["failure_log"])


# ----------------------------------------------------------------------
# the doctor CLI
# ----------------------------------------------------------------------
class TestDoctorCLI:
    def test_healthy_csv(self, tmp_path, capsys):
        log = NetworkLog()
        log.add(
            NetLogRecord(
                msg_id=0, src=0, dst=1, length_bytes=64, kind="data",
                inject_time=0.0, start_time=0.0, deliver_time=5.0,
                contention=1.0, hops=1,
            )
        )
        log.add(
            NetLogRecord(
                msg_id=1, src=1, dst=0, length_bytes=64, kind="data",
                inject_time=4.0, start_time=4.0, deliver_time=7.0,
                contention=0.0, hops=1,
            )
        )
        path = str(tmp_path / "log.csv")
        log.write_csv(path)
        assert main(["doctor", path]) == 0
        out = capsys.readouterr().out
        assert "activity log" in out and "healthy" in out

    def test_drain_dominated_csv_flags_problem(self, tmp_path, capsys):
        log = NetworkLog()
        for i in range(5):
            log.add(
                NetLogRecord(
                    msg_id=i, src=0, dst=1, length_bytes=64, kind="data",
                    inject_time=float(i), start_time=float(i),
                    deliver_time=100.0 + i, contention=50.0, hops=1,
                )
            )
        path = str(tmp_path / "saturated.csv")
        log.write_csv(path)
        assert main(["doctor", path]) == 1
        out = capsys.readouterr().out
        assert "drain time dominates" in out
        assert "problem(s) found" in out

    def test_sweep_report_with_deadlock_row(self, tmp_path, capsys):
        result = run_sweep(
            make_grid(
                apps=("1d-fft",),
                app_params={"1d-fft": {"n": 32}},
                meshes=("2x2",),
                messages_per_source=10,
            ),
            jobs=1,
            cache=None,
            cell_fn=_deadlocked_cell,
        )
        path = str(tmp_path / "sweep.json")
        result.write_json(path)
        assert main(["doctor", path]) == 1
        out = capsys.readouterr().out
        assert "sweep report" in out
        assert "1 deadlock" in out
        assert "wait-for cycle" in out

    def test_run_report_with_leak_metric(self, tmp_path, capsys):
        doc = {
            "schema": 1,
            "app": "1d-fft",
            "messages": 10,
            "sim_span": 50.0,
            "wall_seconds": 0.1,
            "metrics": {"net.leaked_facilities": {"value": 2}},
        }
        path = str(tmp_path / "report.json")
        with open(path, "w") as handle:
            json.dump(doc, handle)
        assert main(["doctor", path]) == 1
        out = capsys.readouterr().out
        assert "run report" in out
        assert "2 facility server(s) leaked" in out

    def test_unrecognized_artifact_errors(self, tmp_path, capsys):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            json.dump({"what": "ever"}, handle)
        assert main(["doctor", path]) == 2
        assert "unrecognized artifact" in capsys.readouterr().err
