"""Resource lifecycle and stall diagnosis regression tests.

Covers the failure semantics of the kernel: the clock-rewind clamp,
multi-server double-acquire accounting, exception-safe cleanup in
``Facility.use`` and ``MeshNetwork.transfer``, the end-of-run leak
audit, the deadlock detector and no-progress watchdog, sweep failure
classification, and the ``repro doctor`` CLI.
"""

import json

import pytest

from repro.cli import main
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetLogRecord, NetworkLog
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.simkernel import (
    DeadlockError,
    Facility,
    FacilityLeakError,
    Simulator,
    StallError,
    check_leaks,
    diagnose_stall,
    hold,
    release,
    request,
)
from repro.simkernel.engine import ProcessState
from repro.sweep import make_grid, run_sweep


# ----------------------------------------------------------------------
# clock semantics
# ----------------------------------------------------------------------
class TestClockRewind:
    def test_second_run_with_earlier_until_does_not_rewind(self):
        sim = Simulator()

        def proc():
            yield hold(100.0)

        sim.process(proc(), name="p")
        assert sim.run() == 100.0
        # A stale horizon must not move the clock backwards.
        assert sim.run(until=10.0) == 100.0
        assert sim.now == 100.0

    def test_break_path_clamps_to_current_time(self):
        sim = Simulator()

        def proc():
            yield hold(100.0)

        sim.process(proc(), name="p")
        assert sim.run(until=10.0) == 10.0
        assert sim.run(until=5.0) == 10.0
        assert sim.now == 10.0

    def test_drain_path_still_advances_to_future_until(self):
        sim = Simulator()
        assert sim.run(until=42.0) == 42.0
        assert sim.run(until=7.0) == 42.0


# ----------------------------------------------------------------------
# multi-server accounting
# ----------------------------------------------------------------------
class TestDoubleAcquire:
    def test_one_process_holding_two_servers_releases_both(self):
        sim = Simulator()
        fac = Facility(sim, name="f", servers=2)
        stages = []

        def proc():
            yield request(fac)
            yield request(fac)
            stages.append(("held", fac.busy, dict(sim.processes[0].held)[fac]))
            yield hold(1.0)
            yield release(fac)
            stages.append(("after-one", fac.busy))
            yield release(fac)
            stages.append(("after-two", fac.busy))

        sim.process(proc(), name="p")
        sim.run()
        assert stages == [("held", 2, 2), ("after-one", 1), ("after-two", 0)]
        assert sim.leaked_facilities() == []

    def test_extra_release_still_rejected(self):
        sim = Simulator()
        fac = Facility(sim, name="f", servers=2)

        def proc():
            yield request(fac)
            yield release(fac)
            yield release(fac)

        sim.process(proc(), name="p")
        with pytest.raises(RuntimeError, match="does not hold"):
            sim.run()


# ----------------------------------------------------------------------
# exception-safe cleanup
# ----------------------------------------------------------------------
class TestUseCleanup:
    def test_shutdown_mid_hold_releases_the_server(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(100.0)

        proc = sim.process(user(), name="u")
        sim.run(until=10.0)
        assert fac.busy == 1
        terminated = sim.shutdown()
        assert proc in terminated
        assert proc.state is ProcessState.FAILED
        assert fac.busy == 0
        assert sim.leaked_facilities(include_live=True) == []

    def test_failure_mid_hold_releases_the_server(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(5.0)

        def saboteur():
            yield hold(1.0)
            raise RuntimeError("injected fault")

        sim.process(user(), name="u")
        sim.process(saboteur(), name="s")
        with pytest.raises(RuntimeError, match="injected fault"):
            sim.run()
        # The holder is still live (suspended); shutdown unwinds it.
        sim.shutdown()
        assert fac.busy == 0
        assert sim.leaked_facilities(include_live=True) == []


class TestShutdownRegrant:
    """``shutdown()`` must not leak servers re-granted during teardown.

    Closing a holder's generator runs its cleanup release, which hands
    the server to the next queued requester; that requester is still
    suspended at its request yield (the grant is outside ``use()``'s
    try block and not in ``transfer()``'s acquired list), so closing it
    too must not strand the server.
    """

    def test_contended_facility_survives_truncated_run(self):
        sim = Simulator()
        fac = Facility(sim, name="chan")

        def worker():
            yield from fac.use(10.0)

        sim.process(worker(), name="holder")
        sim.process(worker(), name="waiter")
        sim.run(until=5.0)
        assert fac.busy == 1 and fac.queue_length == 1
        sim.shutdown()
        assert fac.busy == 0 and fac.queue_length == 0
        check_leaks(sim)
        assert sim.leaked_facilities(include_live=True) == []

    def test_contended_transfer_survives_truncated_run(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig(width=2, height=2))

        def sender(name):
            yield from net.transfer(
                NetworkMessage(src=0, dst=3, length_bytes=4096, kind="data")
            )

        sim.process(sender("s1"), name="s1")
        sim.process(sender("s2"), name="s2")
        # Mid-flight: s1 holds the source NI plus channels, s2 is
        # queued on the NI -- the exact re-grant hazard.
        sim.run(until=2.0)
        assert net._injection[0].queue_length == 1
        sim.shutdown()
        check_leaks(sim)
        assert net.in_flight == 0
        assert net.leaked_facilities(include_live=True) == []

    def test_granted_but_unresumed_server_is_swept(self):
        # The watchdog truncates the run after the grant fired but
        # before the grantee's resume event ran: the server is in the
        # process's held map while its generator still sits at the
        # request yield, invisible to the unwind path.
        sim = Simulator()
        fac = Facility(sim, name="chan")

        def worker():
            yield from fac.use(1.0)

        sim.process(worker(), name="w")
        with pytest.raises(StallError):
            sim.run(max_no_progress_events=1)
        assert fac.busy == 1  # granted, resume event still queued
        sim.shutdown()
        assert fac.busy == 0
        check_leaks(sim)

    def test_truncated_synthetic_generation_checks_clean(self):
        # generate(until=...) wires run -> shutdown -> check_leaks; a
        # truncated run with contention must not trip the leak audit.
        from repro.core import SyntheticTrafficGenerator, characterize_log

        # All-pairs traffic so fitted spatial patterns share channels:
        # cross-source channel contention at the truncation instant is
        # what used to trip the re-grant leak.
        source_log = NetworkLog()
        msg_id = 0
        for src in range(4):
            for dst in range(4):
                if dst == src:
                    continue
                for _ in range(4):
                    source_log.add(
                        NetLogRecord(
                            msg_id=msg_id,
                            src=src,
                            dst=dst,
                            length_bytes=1024,
                            kind="data",
                            inject_time=float(msg_id),
                            start_time=float(msg_id),
                            deliver_time=float(msg_id + 2),
                            contention=0.0,
                            hops=1,
                        )
                    )
                    msg_id += 1
        mesh = MeshConfig(width=2, height=2)
        characterization = characterize_log(source_log, mesh)
        generator = SyntheticTrafficGenerator(
            characterization,
            mesh_config=mesh,
            seed=1,
            rate_scale=16.0,
        )
        log = generator.generate(messages_per_source=60, until=8.0)
        assert all(r.inject_time <= 8.0 for r in log)

    def test_raising_cleanup_does_not_abort_teardown(self):
        sim = Simulator()

        def bad():
            try:
                yield hold(10.0)
            finally:
                raise ValueError("boom")

        def good():
            yield hold(10.0)

        bad_proc = sim.process(bad(), name="bad")
        good_proc = sim.process(good(), name="good")
        sim.run(until=5.0)
        with pytest.raises(RuntimeError, match="raised during shutdown.*boom") as excinfo:
            sim.shutdown()
        # Every process was still unwound and the queue cleared.
        assert bad_proc.state is ProcessState.FAILED
        assert good_proc.state is ProcessState.FAILED
        assert sim.queue_depth == 0
        (failed, cause), = excinfo.value.errors
        assert failed is bad_proc and isinstance(cause, ValueError)


class TestTransferCleanup:
    def _network(self):
        sim = Simulator()
        net = MeshNetwork(sim, MeshConfig(width=2, height=2))
        return sim, net

    def test_raising_delivery_handler_leaves_no_leaks(self):
        sim, net = self._network()

        def bad_handler(message, record):
            raise RuntimeError("handler blew up")

        net.register_handler(3, bad_handler)

        def sender(src, dst):
            yield from net.transfer(
                NetworkMessage(src=src, dst=dst, length_bytes=64, kind="data")
            )

        # Two overlapping transfers: one hits the raising handler while
        # the other is still holding channels mid-flight.
        sim.process(sender(0, 3), name="doomed")
        sim.process(sender(1, 2), name="bystander")
        with pytest.raises(RuntimeError, match="handler blew up"):
            sim.run()
        sim.shutdown()
        assert sim.leaked_facilities(include_live=True) == []
        assert net.in_flight == 0
        assert net.leaked_facilities(include_live=True) == []

    def test_shutdown_mid_transfer_restores_in_flight(self):
        sim, net = self._network()

        def sender():
            yield from net.transfer(
                NetworkMessage(src=0, dst=3, length_bytes=4096, kind="data")
            )

        sim.process(sender(), name="s")
        sim.run(until=net.config.injection_time / 2.0)
        assert net.in_flight == 1
        sim.shutdown()
        assert net.in_flight == 0
        assert sim.leaked_facilities(include_live=True) == []


# ----------------------------------------------------------------------
# leak audit
# ----------------------------------------------------------------------
class TestLeakAudit:
    def test_finish_while_holding_is_reported_and_raises(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def leaker():
            yield request(fac)
            # Finishes without releasing: an unfixable leak.

        proc = sim.process(leaker(), name="leaker")
        sim.run()
        leaks = sim.leaked_facilities()
        assert leaks == [(proc, fac, 1)]
        with pytest.raises(FacilityLeakError, match="leaker.*holds 1 server"):
            check_leaks(sim)

    def test_live_holders_not_reported_by_default(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(100.0)

        sim.process(user(), name="u")
        sim.run(until=10.0)
        assert sim.leaked_facilities() == []
        assert sim.leaked_facilities(include_live=True) != []
        sim.shutdown()


# ----------------------------------------------------------------------
# deadlock detection
# ----------------------------------------------------------------------
class TestDeadlockDetection:
    def test_adaptive_mesh_channel_ring_raises_with_cycle(self):
        sim = Simulator()
        net = MeshNetwork(
            sim,
            MeshConfig(width=2, height=2, routing="adaptive", virtual_channels=2),
        )
        # Well-formed adaptive transfers are deadlock-free by design, so
        # drive the network's channel facilities directly: a two-process
        # ring acquiring ch[0->1] and ch[1->3] in opposite orders.
        c01 = net.channel(0, 1)
        c13 = net.channel(1, 3)

        def grabber(first, second):
            yield request(first)
            yield hold(1.0)
            yield request(second)

        sim.process(grabber(c01, c13), name="east-first")
        sim.process(grabber(c13, c01), name="north-first")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(check_stall=True)
        error = excinfo.value
        assert set(error.cycle) == {"east-first", "north-first"}
        assert "wait-for cycle" in str(error)
        assert "east-first" in str(error) and "north-first" in str(error)
        assert "ch[0->1" in str(error) or "ch[1->3" in str(error)

    def test_self_deadlock_on_single_server_facility(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def greedy():
            yield request(fac)
            yield request(fac)  # single server: waits on itself forever

        sim.process(greedy(), name="greedy")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(check_stall=True)
        assert excinfo.value.cycle == ("greedy",)

    def test_deep_ring_diagnosed_without_recursion_error(self):
        # The wait-for cycle search must not recurse: a blocked chain
        # deeper than Python's recursion limit previously raised
        # RecursionError instead of the DeadlockError diagnosis.
        import sys

        sim = Simulator()
        n = sys.getrecursionlimit() + 100
        facs = [Facility(sim, name=f"f{i}") for i in range(n)]

        def link(i):
            yield request(facs[i])
            yield hold(1.0)
            yield request(facs[(i + 1) % n])

        for i in range(n):
            sim.process(link(i), name=f"p{i}")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(check_stall=True)
        assert len(excinfo.value.cycle) == n

    def test_clean_run_unaffected_by_check_stall(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def user():
            yield from fac.use(2.0)

        sim.process(user(), name="u")
        assert sim.run(check_stall=True) == 2.0

    def test_deadlock_error_pickles_with_cycle(self):
        import pickle

        error = DeadlockError("msg", cycle=("a", "b"))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, DeadlockError)
        assert clone.cycle == ("a", "b")
        assert str(clone) == "msg"

    def test_diagnose_stall_names_blocked_processes(self):
        sim = Simulator()
        fac = Facility(sim, name="f")

        def holder():
            yield request(fac)
            yield hold(1.0)

        def waiter():
            yield request(fac)
            yield release(fac)

        sim.process(holder(), name="holder")
        sim.process(waiter(), name="waiter")
        sim.run(until=0.5)
        diagnosis = diagnose_stall(sim)
        assert [p.name for p in diagnosis.blocked] == ["waiter"]
        assert "waiter: waiting on Facility('f') held by 'holder'" in (
            diagnosis.describe()
        )
        sim.shutdown()


class TestWatchdog:
    def test_zero_delay_storm_raises_stall_error(self):
        sim = Simulator()

        def spinner():
            while True:
                yield hold(0.0)

        sim.process(spinner(), name="spinner")
        with pytest.raises(StallError, match="no simulated-time progress"):
            sim.run(max_no_progress_events=100)

    def test_watchdog_tolerates_progressing_runs(self):
        sim = Simulator()

        def ticker():
            for _ in range(500):
                yield hold(0.01)

        sim.process(ticker(), name="t")
        sim.run(max_no_progress_events=10)
        assert sim.now == pytest.approx(5.0)

    def test_bad_threshold_rejected(self):
        sim = Simulator()
        with pytest.raises(RuntimeError, match="max_no_progress_events"):
            sim.run(max_no_progress_events=0)


# ----------------------------------------------------------------------
# offered rate vs throughput
# ----------------------------------------------------------------------
class TestOfferedRate:
    def _saturated_log(self):
        log = NetworkLog()
        for i in range(10):
            log.add(
                NetLogRecord(
                    msg_id=i,
                    src=0,
                    dst=1,
                    length_bytes=64,
                    kind="data",
                    inject_time=float(i),
                    start_time=float(i),
                    deliver_time=109.0 if i == 9 else float(i + 1),
                    contention=0.0,
                    hops=1,
                )
            )
        return log

    def test_offered_rate_uses_injection_window(self):
        log = self._saturated_log()
        assert log.injection_span() == 9.0
        assert log.span() == 109.0
        # Offered load over the injection window, not the drain-heavy
        # full span; throughput keeps the full-span denominator.
        assert log.offered_rate() == pytest.approx(10.0 / 9.0)
        assert log.throughput() == pytest.approx(10.0 / 109.0)

    def test_degenerate_logs_report_zero(self):
        empty = NetworkLog()
        assert empty.offered_rate() == 0.0
        assert empty.throughput() == 0.0

    def test_load_point_and_validation_keep_delivered_rate_semantics(self):
        # LoadPoint.achieved_rate and ValidationReport rates stay
        # delivered-per-span (throughput): the saturation knee that
        # sweep_load's efficiency_threshold detects and the validation
        # tolerances were calibrated against that quantity, not the
        # injection-window offered rate.
        from repro.core import compare_logs
        from repro.core.loadsweep import LoadPoint

        log = self._saturated_log()
        report = compare_logs(log, log)
        assert report.original_rate == pytest.approx(log.throughput())
        assert report.original_rate != pytest.approx(log.offered_rate())
        point = LoadPoint(
            rate_scale=1.0,
            requested_rate=1.0,
            achieved_rate=log.throughput(),
            mean_latency=log.mean_latency(),
            mean_contention=log.mean_contention(),
        )
        # Drain-dominated log: the delivered rate is what collapses at
        # saturation, which is the efficiency signal.
        assert point.efficiency == pytest.approx(10.0 / 109.0)

    def test_measure_load_point_reports_delivered_rate(self):
        from repro.core import characterize_log
        from repro.core.loadsweep import measure_load_point

        source_log = NetworkLog()
        for i in range(30):
            src = i % 2
            source_log.add(
                NetLogRecord(
                    msg_id=i,
                    src=src,
                    dst=1 - src,
                    length_bytes=64,
                    kind="data",
                    inject_time=float(2 * i),
                    start_time=float(2 * i),
                    deliver_time=float(2 * i + 1),
                    contention=0.0,
                    hops=1,
                )
            )
        mesh = MeshConfig(width=2, height=1)
        measurement = measure_load_point(
            characterize_log(source_log, mesh),
            mesh_config=mesh,
            messages_per_source=10,
            seed=5,
        )
        assert measurement.point.achieved_rate == pytest.approx(
            measurement.log.throughput()
        )


# ----------------------------------------------------------------------
# sweep failure classification
# ----------------------------------------------------------------------
def _deadlocked_cell(doc):
    raise DeadlockError(
        "stall at t=5: 2 process(es) blocked\nwait-for cycle: a -> f (held by b)",
        cycle=("a", "b"),
    )


def _leaky_cell(doc):
    raise FacilityLeakError("1 leaked facility holding(s):\n  p still holds 1 server")


class TestSweepClassification:
    def _grid(self):
        return make_grid(
            apps=("1d-fft",),
            app_params={"1d-fft": {"n": 32}},
            meshes=("2x2",),
            messages_per_source=10,
        )

    def test_deadlock_cell_yields_structured_row(self):
        result = run_sweep(self._grid(), jobs=1, cache=None, cell_fn=_deadlocked_cell)
        (row,) = result.rows
        assert row["status"] == "deadlock"
        assert row["error"].startswith("DeadlockError:")
        assert any("wait-for cycle" in line for line in row["failure_log"])
        assert "wait-for cycle" in result.describe()

    def test_leak_cell_yields_structured_row(self):
        result = run_sweep(self._grid(), jobs=1, cache=None, cell_fn=_leaky_cell)
        (row,) = result.rows
        assert row["status"] == "leak"
        assert row["error"].startswith("FacilityLeakError:")
        assert any("still holds" in line for line in row["failure_log"])


# ----------------------------------------------------------------------
# the doctor CLI
# ----------------------------------------------------------------------
class TestDoctorCLI:
    def test_healthy_csv(self, tmp_path, capsys):
        log = NetworkLog()
        log.add(
            NetLogRecord(
                msg_id=0, src=0, dst=1, length_bytes=64, kind="data",
                inject_time=0.0, start_time=0.0, deliver_time=5.0,
                contention=1.0, hops=1,
            )
        )
        log.add(
            NetLogRecord(
                msg_id=1, src=1, dst=0, length_bytes=64, kind="data",
                inject_time=4.0, start_time=4.0, deliver_time=7.0,
                contention=0.0, hops=1,
            )
        )
        path = str(tmp_path / "log.csv")
        log.write_csv(path)
        assert main(["doctor", path]) == 0
        out = capsys.readouterr().out
        assert "activity log" in out and "healthy" in out

    def test_drain_dominated_csv_flags_problem(self, tmp_path, capsys):
        log = NetworkLog()
        for i in range(5):
            log.add(
                NetLogRecord(
                    msg_id=i, src=0, dst=1, length_bytes=64, kind="data",
                    inject_time=float(i), start_time=float(i),
                    deliver_time=100.0 + i, contention=50.0, hops=1,
                )
            )
        path = str(tmp_path / "saturated.csv")
        log.write_csv(path)
        assert main(["doctor", path]) == 1
        out = capsys.readouterr().out
        assert "drain time dominates" in out
        assert "problem(s) found" in out

    def test_sweep_report_with_deadlock_row(self, tmp_path, capsys):
        result = run_sweep(
            make_grid(
                apps=("1d-fft",),
                app_params={"1d-fft": {"n": 32}},
                meshes=("2x2",),
                messages_per_source=10,
            ),
            jobs=1,
            cache=None,
            cell_fn=_deadlocked_cell,
        )
        path = str(tmp_path / "sweep.json")
        result.write_json(path)
        assert main(["doctor", path]) == 1
        out = capsys.readouterr().out
        assert "sweep report" in out
        assert "1 deadlock" in out
        assert "wait-for cycle" in out

    def test_run_report_with_leak_metric(self, tmp_path, capsys):
        doc = {
            "schema": 1,
            "app": "1d-fft",
            "messages": 10,
            "sim_span": 50.0,
            "wall_seconds": 0.1,
            "metrics": {"net.leaked_facilities": {"value": 2}},
        }
        path = str(tmp_path / "report.json")
        with open(path, "w") as handle:
            json.dump(doc, handle)
        assert main(["doctor", path]) == 1
        out = capsys.readouterr().out
        assert "run report" in out
        assert "2 facility server(s) leaked" in out

    def test_unrecognized_artifact_errors(self, tmp_path, capsys):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            json.dump({"what": "ever"}, handle)
        assert main(["doctor", path]) == 2
        assert "unrecognized artifact" in capsys.readouterr().err
