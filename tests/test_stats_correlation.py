"""Tests for inter-arrival autocorrelation analysis."""

import numpy as np
import pytest

from repro.stats import autocorrelation, correlation_profile


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        series = np.random.default_rng(0).exponential(1.0, 100)
        assert autocorrelation(series, 0) == 1.0

    def test_iid_series_near_zero(self):
        series = np.random.default_rng(1).exponential(1.0, 20000)
        assert abs(autocorrelation(series, 1)) < 0.03
        assert abs(autocorrelation(series, 5)) < 0.03

    def test_alternating_series_negative_lag_one(self):
        series = np.array([1.0, 10.0] * 200)
        assert autocorrelation(series, 1) == pytest.approx(-1.0, abs=0.02)
        assert autocorrelation(series, 2) == pytest.approx(1.0, abs=0.02)

    def test_bursty_series_positive_small_lags(self):
        # Runs of small gaps followed by one large gap.
        rng = np.random.default_rng(2)
        gaps = []
        for _ in range(300):
            gaps.extend(rng.exponential(1.0, 8))
            gaps.append(100.0)
        series = np.asarray(gaps)
        assert autocorrelation(series, 1) < 0.05  # big gaps are isolated
        # Burst length 9 -> periodic structure visible at that lag.
        assert autocorrelation(series, 9) > 0.5

    def test_constant_series_zero(self):
        assert autocorrelation(np.full(50, 3.0), 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0, 2.0]), -1)
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0, 2.0]), 5)


class TestCorrelationProfile:
    def test_iid_is_renewal_like(self):
        series = np.random.default_rng(3).exponential(1.0, 20000)
        profile = correlation_profile(series, max_lag=8)
        # The portmanteau test accepts white noise even when a single
        # lag grazes the per-lag band by chance.
        assert profile.is_renewal_like
        assert profile.p_value > 0.05

    def test_periodic_series_flagged(self):
        series = np.array([1.0, 1.0, 1.0, 50.0] * 200)
        profile = correlation_profile(series, max_lag=8)
        assert not profile.is_renewal_like
        assert 4 in profile.significant_lags
        assert profile.peak_lag in (4, 8)
        assert profile.p_value < 1e-6

    def test_lag_truncation_for_short_series(self):
        profile = correlation_profile(np.array([1.0, 2.0, 3.0, 4.0, 5.0]), max_lag=50)
        assert profile.lags[-1] == 3  # n-2

    def test_describe(self):
        series = np.random.default_rng(4).exponential(1.0, 500)
        text = correlation_profile(series).describe()
        assert "r1=" in text and "band" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            correlation_profile(np.array([1.0, 2.0, 3.0]), max_lag=0)
        with pytest.raises(ValueError):
            correlation_profile(np.array([1.0, 2.0]))


class TestApplicationSeries:
    def test_fft_interarrivals_are_not_renewal(self):
        """The justification for the phase-coupled generator: real
        barrier-synchronized traffic has temporal dependence at its
        burst period (the per-wave message count)."""
        from repro import characterize_shared_memory, create_app

        run = characterize_shared_memory(create_app("1d-fft", n=256))
        profile = correlation_profile(run.log.interarrival_times(), max_lag=20)
        assert not profile.is_renewal_like
        assert profile.peak_lag == 14  # messages per injection wave
        assert max(profile.values) > 0.5
