"""Unit tests for the candidate distribution library."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    Hyperexponential2,
    Hypoexponential2,
    Normal,
    ShiftedExponential,
    Uniform,
    Weibull,
    continuous_candidates,
)

RNG = np.random.default_rng(7)

ALL_FAMILIES = [
    Exponential(rate=0.5),
    ShiftedExponential(shift=2.0, rate=1.0),
    Erlang(k=3, rate=1.5),
    Gamma(shape=2.5, scale=3.0),
    Weibull(shape=1.7, scale=4.0),
    Normal(mu=10.0, sigma=2.0),
    Uniform(low=1.0, width=5.0),
    Hyperexponential2(p=0.3, rate1=2.0, rate2=0.2),
    Hypoexponential2(rate1=1.0, rate2=3.0),
]


@pytest.mark.parametrize("dist", ALL_FAMILIES, ids=lambda d: d.name)
class TestDistributionInterface:
    def test_pdf_nonnegative(self, dist):
        x = np.linspace(-5, 50, 300)
        assert (dist.pdf(x) >= 0).all()

    def test_cdf_monotone_and_bounded(self, dist):
        x = np.linspace(-5, 200, 500)
        cdf = dist.cdf(x)
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf.min() >= -1e-12 and cdf.max() <= 1 + 1e-12

    def test_pdf_integrates_to_one(self, dist):
        # Integrate over a wide support numerically.
        hi = dist.mean() + 12 * dist.std() + 10
        x = np.linspace(1e-9 if dist.mean() > 0 else -hi, hi, 40000)
        integral = np.trapezoid(dist.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=2e-2)

    def test_sample_moments_match_analytic(self, dist):
        sample = dist.sample(np.random.default_rng(42), 200_000)
        assert float(np.mean(sample)) == pytest.approx(dist.mean(), rel=0.03)
        assert float(np.var(sample)) == pytest.approx(dist.variance(), rel=0.08)

    def test_unconstrained_roundtrip(self, dist):
        vec = dist.to_unconstrained()
        rebuilt = dist.from_unconstrained(vec)
        for key, value in dist.params().items():
            assert rebuilt.params()[key] == pytest.approx(value, rel=1e-6)

    def test_initial_guess_mean_close(self, dist):
        sample = dist.sample(np.random.default_rng(3), 50_000)
        guess = type(dist).initial_guess(sample)
        assert guess.mean() == pytest.approx(float(np.mean(sample)), rel=0.25)

    def test_describe_mentions_name(self, dist):
        assert dist.name in dist.describe()


class TestValidation:
    def test_exponential_bad_rate(self):
        with pytest.raises(ValueError):
            Exponential(rate=0.0)

    def test_shifted_exponential_bad_shift(self):
        with pytest.raises(ValueError):
            ShiftedExponential(shift=-1.0, rate=1.0)

    def test_erlang_bad_k(self):
        with pytest.raises(ValueError):
            Erlang(k=0, rate=1.0)

    def test_gamma_bad_params(self):
        with pytest.raises(ValueError):
            Gamma(shape=-1.0, scale=1.0)

    def test_weibull_bad_params(self):
        with pytest.raises(ValueError):
            Weibull(shape=1.0, scale=0.0)

    def test_normal_bad_sigma(self):
        with pytest.raises(ValueError):
            Normal(mu=0.0, sigma=0.0)

    def test_uniform_bad_width(self):
        with pytest.raises(ValueError):
            Uniform(low=0.0, width=0.0)

    def test_hyper_bad_p(self):
        with pytest.raises(ValueError):
            Hyperexponential2(p=1.5, rate1=1.0, rate2=2.0)

    def test_hypo_bad_rates(self):
        with pytest.raises(ValueError):
            Hypoexponential2(rate1=0.0, rate2=1.0)

    def test_deterministic_bad_value(self):
        with pytest.raises(ValueError):
            Deterministic(value=-1.0)


class TestSpecifics:
    def test_exponential_cv_is_one(self):
        assert Exponential(rate=3.0).cv() == pytest.approx(1.0)

    def test_hyperexponential_cv_above_one(self):
        assert Hyperexponential2(p=0.2, rate1=5.0, rate2=0.1).cv() > 1.0

    def test_hypoexponential_cv_below_one(self):
        assert Hypoexponential2(rate1=1.0, rate2=2.0).cv() < 1.0

    def test_erlang_equals_gamma_integer_shape(self):
        erl = Erlang(k=4, rate=2.0)
        gam = Gamma(shape=4.0, scale=0.5)
        x = np.linspace(0.01, 10, 100)
        np.testing.assert_allclose(erl.pdf(x), gam.pdf(x), rtol=1e-9)

    def test_erlang_preserves_k_through_unconstrained(self):
        erl = Erlang(k=5, rate=1.0)
        rebuilt = erl.from_unconstrained(np.array([math.log(2.0)]))
        assert rebuilt.k == 5
        assert rebuilt.rate == pytest.approx(2.0)

    def test_hypoexponential_near_equal_rates_nudged(self):
        dist = Hypoexponential2(rate1=1.0, rate2=1.0)
        x = np.linspace(0.01, 10, 50)
        assert np.isfinite(dist.pdf(x)).all()

    def test_deterministic_cdf_step(self):
        dist = Deterministic(value=5.0)
        assert dist.cdf(np.array([4.9]))[0] == 0.0
        assert dist.cdf(np.array([5.0]))[0] == 1.0
        assert dist.variance() == 0.0
        assert (dist.sample(RNG, 10) == 5.0).all()

    def test_uniform_high_property(self):
        assert Uniform(low=2.0, width=3.0).high == 5.0

    def test_shifted_exponential_support(self):
        dist = ShiftedExponential(shift=3.0, rate=1.0)
        assert dist.pdf(np.array([2.9]))[0] == 0.0
        assert dist.pdf(np.array([3.1]))[0] > 0.0
        assert (dist.sample(RNG, 100) >= 3.0).all()

    def test_candidate_list_contents(self):
        names = {family.name for family in continuous_candidates()}
        assert {"exponential", "hyperexponential", "hypoexponential", "gamma",
                "weibull", "normal", "uniform", "erlang", "shifted-exponential"} <= names


@settings(max_examples=25, deadline=None)
@given(rate=st.floats(0.01, 100.0))
def test_exponential_mean_inverse_rate(rate):
    assert Exponential(rate=rate).mean() == pytest.approx(1.0 / rate)


@settings(max_examples=25, deadline=None)
@given(
    p=st.floats(0.05, 0.95),
    r1=st.floats(0.1, 10.0),
    r2=st.floats(0.1, 10.0),
)
def test_hyperexponential_mean_formula(p, r1, r2):
    dist = Hyperexponential2(p=p, rate1=r1, rate2=r2)
    assert dist.mean() == pytest.approx(p / r1 + (1 - p) / r2)
