"""Tests for histogramming, the secant solver, regression and fitting."""

import numpy as np
import pytest

from repro.stats import (
    Exponential,
    Gamma,
    Hyperexponential2,
    NonlinearRegression,
    Normal,
    Uniform,
    Weibull,
    build_histogram,
    chi_square_statistic,
    fit_distribution,
    fit_interarrival,
    ks_statistic,
    r_squared,
    secant_least_squares,
)

RNG = np.random.default_rng(123)


class TestHistogram:
    def test_density_integrates_to_one(self):
        data = RNG.exponential(2.0, 5000)
        hist = build_histogram(data)
        assert float(np.sum(hist.density * hist.widths)) == pytest.approx(1.0)

    def test_counts_sum_to_n(self):
        data = RNG.normal(0, 1, 1234)
        hist = build_histogram(data, bins=20)
        assert hist.total == 1234

    def test_explicit_bins(self):
        data = RNG.uniform(0, 1, 100)
        hist = build_histogram(data, bins=10)
        assert hist.n_bins == 10

    def test_equal_mass_policy(self):
        data = RNG.exponential(1.0, 2000)
        hist = build_histogram(data, bins=10, policy="equal-mass")
        # Equal-mass bins hold roughly equal counts.
        assert hist.counts.std() < hist.counts.mean() * 0.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_histogram(np.array([]))

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            build_histogram(np.array([1.0, 2.0]), policy="nope")

    def test_negative_bins_rejected(self):
        with pytest.raises(ValueError):
            build_histogram(np.array([1.0, 2.0]), bins=-1)

    def test_degenerate_sample(self):
        hist = build_histogram(np.full(10, 3.0))
        assert hist.total == 10

    def test_nonempty_filter(self):
        data = np.concatenate([np.zeros(50), np.full(50, 10.0)])
        hist = build_histogram(data, bins=10)
        trimmed = hist.nonempty()
        assert (trimmed.counts > 0).all()

    def test_nonempty_interior_hole_keeps_true_geometry(self):
        # Regression: with an *interior* empty bin, the trimmed
        # histogram's centers/widths must describe the surviving bins,
        # not a recomputed edge sequence that silently shifts them.
        data = np.concatenate([np.full(5, 0.5), np.full(5, 2.5)])
        hist = build_histogram(data, bins=3)
        assert list(hist.counts) == [5, 0, 5]
        trimmed = hist.nonempty()
        assert list(trimmed.counts) == [5, 5]
        np.testing.assert_allclose(trimmed.lefts, hist.lefts[[0, 2]])
        np.testing.assert_allclose(trimmed.rights, hist.rights[[0, 2]])
        np.testing.assert_allclose(trimmed.centers, hist.centers[[0, 2]])
        np.testing.assert_allclose(trimmed.widths, hist.widths[[0, 2]])
        # Density over surviving bins still integrates to the surviving
        # mass fraction (here: all of it).
        assert float(np.sum(trimmed.density * trimmed.widths)) == pytest.approx(1.0)

    def test_nonempty_all_bins_occupied_is_identity_geometry(self):
        data = RNG.uniform(0, 1, 500)
        hist = build_histogram(data, bins=5)
        trimmed = hist.nonempty()
        np.testing.assert_allclose(trimmed.centers, hist.centers)
        np.testing.assert_allclose(trimmed.widths, hist.widths)


class TestGoodness:
    def test_r_squared_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_r_squared_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r_squared(y, pred) == pytest.approx(0.0)

    def test_r_squared_shape_mismatch(self):
        with pytest.raises(ValueError):
            r_squared(np.array([1.0]), np.array([1.0, 2.0]))

    def test_r_squared_empty(self):
        with pytest.raises(ValueError):
            r_squared(np.array([]), np.array([]))

    def test_r_squared_constant_observed(self):
        y = np.full(5, 2.0)
        assert r_squared(y, y) == 1.0
        assert r_squared(y, y + 1.0) == 0.0

    def test_ks_statistic_small_for_true_model(self):
        dist = Exponential(rate=0.5)
        sample = dist.sample(np.random.default_rng(1), 5000)
        assert ks_statistic(sample, dist) < 0.03

    def test_ks_statistic_large_for_wrong_model(self):
        sample = np.random.default_rng(1).normal(100, 1, 1000)
        assert ks_statistic(sample, Exponential(rate=1.0)) > 0.5

    def test_ks_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), Exponential(rate=1.0))

    def test_chi_square_small_for_true_model(self):
        dist = Exponential(rate=1.0)
        sample = dist.sample(np.random.default_rng(2), 10000)
        hist = build_histogram(sample, bins=20)
        stat, dof = chi_square_statistic(hist.counts, hist.edges, dist)
        # Expect stat ~ dof for the true model.
        assert stat < 3 * dof

    def test_chi_square_mismatched_sizes(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.array([1.0]), np.array([0.0, 1.0, 2.0]), Exponential(1.0))


class TestSecantSolver:
    def test_solves_linear_system(self):
        # residual(x) = A x - b has unique zero.
        A = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([3.0, 5.0])
        result = secant_least_squares(lambda x: A @ x - b, np.zeros(2))
        expected = np.linalg.solve(A, b)
        np.testing.assert_allclose(result.x, expected, atol=1e-5)
        assert result.sse < 1e-10

    def test_solves_rosenbrock_style_residuals(self):
        def residual(x):
            return np.array([10 * (x[1] - x[0] ** 2), 1 - x[0]])

        result = secant_least_squares(residual, np.array([-1.2, 1.0]), max_iter=400)
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=1e-2)

    def test_overdetermined_least_squares(self):
        # Fit y = a * exp(-b t) to noiseless data.
        t = np.linspace(0, 5, 30)
        y = 3.0 * np.exp(-0.7 * t)

        def residual(params):
            return params[0] * np.exp(-params[1] * t) - y

        result = secant_least_squares(residual, np.array([1.0, 1.0]))
        np.testing.assert_allclose(result.x, [3.0, 0.7], atol=1e-3)

    def test_nonfinite_start_rejected(self):
        with pytest.raises(ValueError):
            secant_least_squares(lambda x: np.array([np.nan]), np.zeros(1))

    def test_handles_nonfinite_excursions(self):
        # Residual overflows for large x but has a finite minimum.
        def residual(x):
            return np.array([np.exp(x[0]) - 2.0])

        result = secant_least_squares(residual, np.array([0.0]))
        assert result.sse < 1e-8

    def test_overflowing_sse_start_rejected(self):
        # Residuals are individually finite but their sum of squares
        # overflows to inf; accepting it would poison the line search.
        with pytest.raises(ValueError):
            secant_least_squares(
                lambda x: np.array([1e200, 1e200]), np.zeros(1)
            )

    def test_sse_overflow_during_search_is_rejected_step(self):
        # A wild trial step lands where the residual is finite but its
        # SSE overflows; the solver must treat it as a rejected step
        # and still converge from the finite region.
        def residual(x):
            if abs(x[0]) > 10.0:
                return np.array([1e200])
            return np.array([x[0] - 0.5])

        result = secant_least_squares(residual, np.array([0.0]))
        assert np.isfinite(result.sse)
        assert result.sse < 1e-8
        np.testing.assert_allclose(result.x, [0.5], atol=1e-4)


class TestRegression:
    def test_fit_quadratic(self):
        x = np.linspace(0, 10, 50)
        y = 2.0 * x**2 + 3.0 * x + 1.0

        def model(x, p):
            return p[0] * x**2 + p[1] * x + p[2]

        result = NonlinearRegression(model).fit(x, y, np.ones(3))
        np.testing.assert_allclose(result.params, [2.0, 3.0, 1.0], atol=1e-4)
        assert result.r2 == pytest.approx(1.0)
        assert result.dof == 47

    def test_weighted_fit_prefers_heavy_points(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 1.0, 10.0])  # last point is an outlier
        weights = np.array([1.0, 1.0, 1e-9])

        def model(x, p):
            return p[0] * x

        result = NonlinearRegression(model).fit(x, y, np.array([5.0]), weights=weights)
        assert result.params[0] == pytest.approx(1.0, abs=0.05)

    def test_shape_validation(self):
        reg = NonlinearRegression(lambda x, p: p[0] * x)
        with pytest.raises(ValueError):
            reg.fit(np.array([1.0]), np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            reg.fit(np.array([]), np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            reg.fit(
                np.array([1.0]),
                np.array([1.0]),
                np.array([1.0]),
                weights=np.array([1.0, 2.0]),
            )


class TestDistributionRecovery:
    """Generate from a known family; the fitter should pick it (or an
    equivalent) and recover its parameters."""

    def test_recovers_exponential(self):
        true = Exponential(rate=0.25)
        sample = true.sample(np.random.default_rng(11), 20000)
        best = fit_interarrival(sample)
        assert best.distribution.mean() == pytest.approx(true.mean(), rel=0.1)
        assert best.r2 > 0.95
        assert best.ks < 0.05

    def test_recovers_normal(self):
        true = Normal(mu=50.0, sigma=5.0)
        sample = true.sample(np.random.default_rng(12), 20000)
        best = fit_interarrival(sample)
        assert best.name in ("normal", "gamma", "weibull", "erlang")
        assert best.distribution.mean() == pytest.approx(50.0, rel=0.05)
        assert best.r2 > 0.97

    def test_recovers_uniform(self):
        true = Uniform(low=10.0, width=20.0)
        sample = true.sample(np.random.default_rng(13), 20000)
        best = fit_interarrival(sample)
        assert best.name == "uniform"
        assert best.distribution.mean() == pytest.approx(20.0, rel=0.05)

    def test_recovers_hyperexponential_burstiness(self):
        true = Hyperexponential2(p=0.8, rate1=10.0, rate2=0.1)
        sample = true.sample(np.random.default_rng(14), 30000)
        best = fit_interarrival(sample)
        # A CV >> 1 sample must not be called exponential/normal/uniform.
        assert best.name in ("hyperexponential", "gamma", "weibull")
        assert best.distribution.cv() > 1.2

    def test_recovers_gamma_shape(self):
        true = Gamma(shape=4.0, scale=2.0)
        sample = true.sample(np.random.default_rng(15), 30000)
        best = fit_interarrival(sample)
        assert best.distribution.mean() == pytest.approx(8.0, rel=0.08)
        assert best.distribution.cv() == pytest.approx(0.5, abs=0.12)
        assert best.r2 > 0.95

    def test_deterministic_short_circuit(self):
        sample = np.full(100, 42.0)
        results = fit_distribution(sample)
        assert len(results) == 1
        assert results[0].name == "deterministic"
        assert results[0].r2 == 1.0
        assert results[0].distribution.mean() == 42.0

    def test_results_sorted_by_selection_score(self):
        sample = Exponential(rate=1.0).sample(np.random.default_rng(16), 5000)
        results = fit_distribution(sample)
        scores = [r.r2 - r.ks for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_distribution(np.array([1.0]))

    def test_custom_candidates(self):
        sample = Exponential(rate=2.0).sample(np.random.default_rng(17), 5000)
        results = fit_distribution(sample, candidates=[Exponential])
        assert len(results) == 1
        assert results[0].name == "exponential"

    def test_fit_result_describe(self):
        sample = Exponential(rate=1.0).sample(np.random.default_rng(18), 2000)
        best = fit_interarrival(sample)
        text = best.describe()
        assert "R2=" in text and "KS=" in text
