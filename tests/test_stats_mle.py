"""Tests for the MLE fitting extension and the new distribution families."""

import numpy as np
import pytest

from repro.stats import (
    Exponential,
    Gamma,
    Hyperexponential2,
    Lognormal,
    Pareto,
    Weibull,
    fit_distribution,
    fit_mle,
    fit_mle_best,
    ks_statistic,
)
from repro.stats.mle import negative_log_likelihood


class TestLognormal:
    def test_moments(self):
        dist = Lognormal(mu=1.0, sigma=0.5)
        sample = dist.sample(np.random.default_rng(0), 200_000)
        assert float(np.mean(sample)) == pytest.approx(dist.mean(), rel=0.02)
        assert float(np.var(sample)) == pytest.approx(dist.variance(), rel=0.08)

    def test_pdf_integrates_to_one(self):
        dist = Lognormal(mu=0.0, sigma=1.0)
        x = np.linspace(1e-9, 200, 200000)
        assert np.trapezoid(dist.pdf(x), x) == pytest.approx(1.0, abs=1e-2)

    def test_roundtrip(self):
        dist = Lognormal(mu=-0.3, sigma=2.0)
        rebuilt = Lognormal.from_unconstrained(dist.to_unconstrained())
        assert rebuilt.mu == pytest.approx(dist.mu)
        assert rebuilt.sigma == pytest.approx(dist.sigma)

    def test_initial_guess_requires_positive(self):
        with pytest.raises(ValueError):
            Lognormal.initial_guess(np.array([-1.0, -2.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            Lognormal(mu=0.0, sigma=0.0)


class TestPareto:
    def test_moments_when_defined(self):
        dist = Pareto(shape=3.0, scale=2.0)
        sample = dist.sample(np.random.default_rng(1), 300_000)
        assert float(np.mean(sample)) == pytest.approx(dist.mean(), rel=0.03)

    def test_infinite_moments(self):
        assert Pareto(shape=0.9, scale=1.0).mean() == float("inf")
        assert Pareto(shape=1.5, scale=1.0).variance() == float("inf")

    def test_support(self):
        dist = Pareto(shape=2.0, scale=5.0)
        assert dist.pdf(np.array([4.9]))[0] == 0.0
        assert dist.pdf(np.array([5.1]))[0] > 0.0
        assert (dist.sample(np.random.default_rng(2), 1000) >= 5.0).all()

    def test_hill_initial_guess(self):
        true = Pareto(shape=2.5, scale=1.0)
        sample = true.sample(np.random.default_rng(3), 50_000)
        guess = Pareto.initial_guess(sample)
        assert guess.shape == pytest.approx(2.5, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pareto(shape=0.0, scale=1.0)


class TestMLE:
    def test_recovers_exponential_rate(self):
        true = Exponential(rate=0.4)
        sample = true.sample(np.random.default_rng(4), 20_000)
        result = fit_mle(sample, Exponential)
        assert result is not None
        # Exponential MLE is 1/mean: recovery should be tight.
        assert result.distribution.rate == pytest.approx(0.4, rel=0.03)
        assert result.log_likelihood > -np.inf

    def test_recovers_gamma(self):
        true = Gamma(shape=3.0, scale=2.0)
        sample = true.sample(np.random.default_rng(5), 20_000)
        result = fit_mle(sample, Gamma)
        assert result.distribution.mean() == pytest.approx(6.0, rel=0.05)
        assert result.distribution.cv() == pytest.approx(true.cv(), rel=0.1)

    def test_mle_beats_moment_guess_likelihood(self):
        true = Weibull(shape=0.7, scale=5.0)
        sample = true.sample(np.random.default_rng(6), 10_000)
        start = Weibull.initial_guess(sample)
        result = fit_mle(sample, Weibull)
        assert negative_log_likelihood(result.distribution, sample) <= (
            negative_log_likelihood(start, sample) + 1e-6
        )

    def test_best_selects_reasonable_family_on_heavy_tail(self):
        true = Hyperexponential2(p=0.8, rate1=10.0, rate2=0.1)
        sample = true.sample(np.random.default_rng(7), 20_000)
        best = fit_mle_best(sample, [Exponential, Gamma, Weibull, Hyperexponential2])
        assert best.distribution.name in ("hyperexponential", "gamma", "weibull")
        assert best.distribution.cv() > 1.5
        assert ks_statistic(sample, best.distribution) < 0.05

    def test_aic_penalizes_parameters(self):
        sample = Exponential(rate=1.0).sample(np.random.default_rng(8), 5_000)
        exp_fit = fit_mle(sample, Exponential)
        hyper_fit = fit_mle(sample, Hyperexponential2)
        # On truly exponential data the 1-parameter family wins by AIC.
        assert exp_fit.aic <= hyper_fit.aic + 2.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_mle(np.array([1.0]), Exponential)

    def test_no_viable_family_rejected(self):
        with pytest.raises(ValueError):
            fit_mle_best(np.array([-5.0, -6.0, -7.0]), [Lognormal])

    def test_describe(self):
        sample = Exponential(rate=2.0).sample(np.random.default_rng(9), 2_000)
        result = fit_mle(sample, Exponential)
        assert "AIC=" in result.describe()


class TestLognormalInDefaultCandidates:
    def test_lognormal_recoverable_via_fit_distribution(self):
        true = Lognormal(mu=2.0, sigma=0.8)
        sample = true.sample(np.random.default_rng(10), 20_000)
        results = fit_distribution(sample)
        best = results[0]
        # Lognormal or a flexible competitor must fit well.
        assert best.r2 > 0.95
        assert best.distribution.mean() == pytest.approx(true.mean(), rel=0.15)
