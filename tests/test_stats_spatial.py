"""Tests for the discrete spatial pattern models and classifier."""

import numpy as np
import pytest

from repro.stats import (
    BimodalUniformPattern,
    LocalityDecayPattern,
    UniformPattern,
    classify_spatial,
)

RNG = np.random.default_rng(5)


class TestUniformPattern:
    def test_excludes_self(self):
        pattern = UniformPattern()
        fracs = pattern.fractions(src=2, num_nodes=8)
        assert fracs[2] == 0.0
        assert fracs.sum() == pytest.approx(1.0)
        others = np.delete(fracs, 2)
        assert np.allclose(others, 1.0 / 7)

    def test_include_self(self):
        pattern = UniformPattern(include_self=True)
        fracs = pattern.fractions(src=0, num_nodes=4)
        assert np.allclose(fracs, 0.25)

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            UniformPattern().fractions(src=0, num_nodes=1)

    def test_sample_destination_never_self(self):
        pattern = UniformPattern()
        draws = {pattern.sample_destination(0, 8, RNG) for _ in range(200)}
        assert 0 not in draws
        assert draws <= set(range(1, 8))


class TestBimodalUniformPattern:
    def test_favorite_gets_mass(self):
        pattern = BimodalUniformPattern(favorite=3, p_favorite=0.6)
        fracs = pattern.fractions(src=0, num_nodes=8)
        assert fracs[3] == pytest.approx(0.6)
        assert fracs[0] == 0.0
        assert fracs.sum() == pytest.approx(1.0)
        others = [fracs[i] for i in range(8) if i not in (0, 3)]
        assert np.allclose(others, (1 - 0.6) / 6)

    def test_source_is_favorite_degenerates_to_uniform(self):
        pattern = BimodalUniformPattern(favorite=0, p_favorite=0.5)
        fracs = pattern.fractions(src=0, num_nodes=4)
        assert fracs[0] == 0.0
        assert np.allclose(fracs[1:], 1.0 / 3)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            BimodalUniformPattern(favorite=0, p_favorite=0.0)

    def test_favorite_out_of_range(self):
        pattern = BimodalUniformPattern(favorite=9, p_favorite=0.5)
        with pytest.raises(ValueError):
            pattern.fractions(src=0, num_nodes=8)


class TestLocalityDecayPattern:
    def test_zero_decay_is_uniform(self):
        pattern = LocalityDecayPattern(decay=0.0, width=4, height=2)
        fracs = pattern.fractions(src=0, num_nodes=8)
        assert np.allclose(np.delete(fracs, 0), 1.0 / 7)

    def test_strong_decay_prefers_neighbors(self):
        pattern = LocalityDecayPattern(decay=3.0, width=4, height=2)
        fracs = pattern.fractions(src=0, num_nodes=8)
        # Node 1 and node 4 are the 1-hop neighbours of node 0.
        assert fracs[1] > fracs[2] > fracs[3]
        assert fracs[4] > fracs[5]

    def test_wrong_node_count_rejected(self):
        pattern = LocalityDecayPattern(decay=1.0, width=4, height=2)
        with pytest.raises(ValueError):
            pattern.fractions(src=0, num_nodes=9)

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            LocalityDecayPattern(decay=-1.0, width=2, height=2)


class TestClassifier:
    def test_classifies_uniform(self):
        observed = UniformPattern().fractions(src=0, num_nodes=8)
        fits = classify_spatial(observed, src=0, width=4, height=2)
        assert fits[0].name == "uniform"
        assert fits[0].r2 == pytest.approx(1.0)

    def test_classifies_favorite_processor(self):
        observed = BimodalUniformPattern(favorite=5, p_favorite=0.7).fractions(
            src=0, num_nodes=8
        )
        fits = classify_spatial(observed, src=0, width=4, height=2)
        assert fits[0].name == "bimodal-uniform"
        assert fits[0].pattern.favorite == 5
        assert fits[0].pattern.p_favorite == pytest.approx(0.7)
        assert fits[0].r2 > 0.99

    def test_classifies_locality(self):
        observed = LocalityDecayPattern(decay=2.0, width=4, height=2).fractions(
            src=0, num_nodes=8
        )
        fits = classify_spatial(observed, src=0, width=4, height=2)
        assert fits[0].name == "locality-decay"
        assert fits[0].r2 > 0.98

    def test_noisy_uniform_not_called_bimodal(self):
        rng = np.random.default_rng(99)
        counts = rng.multinomial(500, UniformPattern().fractions(src=0, num_nodes=8))
        observed = counts / counts.sum()
        fits = classify_spatial(observed, src=0, width=4, height=2)
        assert fits[0].name == "uniform"

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError):
            classify_spatial(np.zeros(8), src=0, width=4, height=2)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classify_spatial(np.ones(6) / 6, src=0, width=4, height=2)

    def test_describe_lines(self):
        observed = UniformPattern().fractions(src=1, num_nodes=8)
        fits = classify_spatial(observed, src=1, width=4, height=2)
        assert "R2=" in fits[0].describe()
