"""Tests for result-cache garbage collection (age/size eviction).

Timestamps are controlled with ``os.utime`` and an explicit ``now``
passed to :meth:`ResultCache.gc`, so nothing here sleeps or depends on
wall-clock resolution.
"""

import os
import time

from repro.sweep.cache import ResultCache

from repro.cli import main

DAY = 86400.0
NOW = 1_000_000_000.0


def make_cache(tmp_path, n=0, size=0, now=NOW):
    """A cache with ``n`` entries aged 0..n-1 days relative to ``now``,
    each ``size`` bytes of padding; returns (cache, keys oldest-first).
    CLI tests pass ``now=time.time()`` since the command cannot inject
    a clock."""
    cache = ResultCache(str(tmp_path / "cache"), fingerprint="f" * 16)
    keys = []
    for i in range(n):
        key = cache.key_for_doc({"cell": i})
        cache.put(key, {"i": i, "pad": "x" * size})
        age_days = n - 1 - i  # cell 0 is the oldest
        os.utime(cache._path(key, ".json"), (now - age_days * DAY,) * 2)
        keys.append(key)
    return cache, keys  # insertion order == oldest first


class TestEntries:
    def test_lists_oldest_first(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=3)
        listed = [entry.key for entry in cache.entries()]
        assert listed == keys

    def test_includes_pickles_and_skips_strays(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=1)
        cache.put_pickle(keys[0], {"big": 1})
        shard = os.path.dirname(cache._path(keys[0], ".json"))
        with open(os.path.join(shard, "leftover.tmp"), "w") as handle:
            handle.write("stray")
        kinds = sorted(entry.kind for entry in cache.entries())
        assert kinds == ["json", "pkl"]

    def test_empty_or_missing_root(self, tmp_path):
        cache = ResultCache(str(tmp_path / "never-created"))
        assert cache.entries() == []
        assert cache.total_bytes() == 0


class TestAgeEviction:
    def test_evicts_only_entries_past_max_age(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=4)  # ages 3d, 2d, 1d, 0d
        report = cache.gc(max_age_seconds=1.5 * DAY, now=NOW)
        assert sorted(e.key for e in report.evicted) == sorted(keys[:2])
        assert all(e.reason == "age" for e in report.evicted)
        assert report.kept == 2
        assert not cache.has(keys[0]) and not cache.has(keys[1])
        assert cache.has(keys[2]) and cache.has(keys[3])

    def test_emptied_shards_are_removed(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=2)
        cache.gc(max_age_seconds=0.0, now=NOW + DAY)
        assert cache.entries() == []
        assert os.listdir(cache.root) == []


class TestSizeEviction:
    def test_evicts_oldest_until_under_budget(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=4, size=100)
        per_entry = cache.entries()[0].bytes
        report = cache.gc(max_bytes=2 * per_entry, now=NOW)
        assert [e.key for e in report.evicted] == keys[:2]
        assert all(e.reason == "size" for e in report.evicted)
        assert report.kept_bytes <= 2 * per_entry
        assert cache.has(keys[2]) and cache.has(keys[3])

    def test_no_eviction_when_under_budget(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=3)
        report = cache.gc(max_bytes=cache.total_bytes() + 1, now=NOW)
        assert report.evicted == []
        assert report.kept == 3

    def test_read_hot_entry_survives_size_pressure(self, tmp_path):
        # Regression: gc orders by mtime but only writes used to
        # refresh it, so the most-requested entry in the cache — read
        # constantly, rewritten never — was always the first size-
        # pressure victim.  A read hit must bump the stamp.
        cache, keys = make_cache(tmp_path, n=4, size=100)
        assert cache.get(keys[0]) is not None  # oldest entry, now hot
        per_entry = cache.entries()[0].bytes
        report = cache.gc(max_bytes=2 * per_entry, now=NOW)
        # The freshly-read oldest entry survives; the next two oldest
        # (untouched) are evicted instead.
        assert [e.key for e in report.evicted] == keys[1:3]
        assert cache.has(keys[0]) and cache.has(keys[3])

    def test_pickle_read_also_refreshes(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=1)
        cache.put_pickle(keys[0], {"obj": 1})
        stale = NOW - 10 * DAY
        os.utime(cache._path(keys[0], ".pkl"), (stale, stale))
        assert cache.get_pickle(keys[0]) == {"obj": 1}
        entry = next(e for e in cache.entries() if e.kind == "pkl")
        assert entry.mtime > stale  # read hit refreshed the stamp

    def test_miss_does_not_create_or_touch(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="f" * 16)
        assert cache.get("0" * 64) is None
        assert cache.entries() == []

    def test_age_then_size_compose(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=4, size=100)
        per_entry = cache.entries()[0].bytes
        report = cache.gc(
            max_age_seconds=2.5 * DAY, max_bytes=2 * per_entry, now=NOW
        )
        # keys[0] (3d) falls to age; survivors still over budget, so the
        # next-oldest falls to size.
        reasons = {e.key: e.reason for e in report.evicted}
        assert reasons == {keys[0]: "age", keys[1]: "size"}


class TestDryRun:
    def test_dry_run_deletes_nothing(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=3)
        report = cache.gc(max_age_seconds=0.0, dry_run=True, now=NOW + DAY)
        assert len(report.evicted) == 3
        assert report.dry_run
        assert all(cache.has(key) for key in keys)
        assert "would evict 3 entries" in report.describe()

    def test_real_run_describes_in_past_tense(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=1)
        report = cache.gc(max_age_seconds=0.0, now=NOW + DAY)
        assert report.describe().startswith("evicted 1 entry")


class TestGcCli:
    def test_requires_a_policy(self, tmp_path, capsys):
        rc = main(["sweep", "cache", "gc", "--cache-dir", str(tmp_path / "c")])
        assert rc == 2
        assert "--max-age-days" in capsys.readouterr().err

    def test_dry_run_then_real(self, tmp_path, capsys):
        cache, keys = make_cache(tmp_path, n=2, now=time.time())
        rc = main(
            [
                "sweep",
                "cache",
                "gc",
                "--cache-dir",
                cache.root,
                "--max-age-days",
                "0.5",
                "--dry-run",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "would evict 1" in out
        assert cache.has(keys[0])  # dry run deleted nothing
        rc = main(
            [
                "sweep",
                "cache",
                "gc",
                "--cache-dir",
                cache.root,
                "--max-age-days",
                "0.5",
            ]
        )
        assert rc == 0
        assert "evicted 1" in capsys.readouterr().out
        assert not cache.has(keys[0])
        assert cache.has(keys[1])

    def test_max_bytes_accepts_size_suffixes(self, tmp_path, capsys):
        cache, keys = make_cache(tmp_path, n=1)
        rc = main(
            [
                "sweep",
                "cache",
                "gc",
                "--cache-dir",
                cache.root,
                "--max-bytes",
                "1M",
            ]
        )
        assert rc == 0
        assert "evicted 0" in capsys.readouterr().out
        assert cache.has(keys[0])


class TestTmpOrphans:
    def make_orphan(self, cache, key, age_seconds, now=NOW):
        shard = os.path.dirname(cache._path(key, ".json"))
        os.makedirs(shard, exist_ok=True)
        path = os.path.join(shard, "deadbeef.tmp")
        with open(path, "w") as handle:
            handle.write("half-written")
        os.utime(path, (now - age_seconds,) * 2)
        return path

    def test_stale_tmp_files_are_listed_and_reaped(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=1)
        path = self.make_orphan(cache, keys[0], age_seconds=3600.0)
        orphans = cache.tmp_orphans(now=NOW)
        assert [o.path for o in orphans] == [path]
        assert orphans[0].reason == "tmp"
        report = cache.gc(max_age_seconds=365 * DAY, now=NOW)
        assert [e.reason for e in report.evicted] == ["tmp"]
        assert not os.path.exists(path)
        assert cache.has(keys[0])  # the real entry is untouched

    def test_in_flight_tmp_files_survive_the_grace_window(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=1)
        path = self.make_orphan(cache, keys[0], age_seconds=1.0)
        assert cache.tmp_orphans(now=NOW) == []
        cache.gc(max_age_seconds=365 * DAY, now=NOW)
        assert os.path.exists(path)  # presumed in-flight, left alone

    def test_dry_run_reports_but_keeps_orphans(self, tmp_path):
        cache, keys = make_cache(tmp_path, n=1)
        path = self.make_orphan(cache, keys[0], age_seconds=3600.0)
        report = cache.gc(max_age_seconds=365 * DAY, dry_run=True, now=NOW)
        assert [e.reason for e in report.evicted] == ["tmp"]
        assert os.path.exists(path)


class TestArtifactMode:
    def test_published_entries_honor_the_umask(self, tmp_path):
        # Regression: mkstemp creates 0600 files and os.replace keeps
        # that mode, so published cache entries were unreadable by any
        # other user regardless of the umask.
        from repro.obs.fsio import _ARTIFACT_MODE

        cache, keys = make_cache(tmp_path, n=1)
        mode = os.stat(cache._path(keys[0], ".json")).st_mode & 0o777
        assert mode == _ARTIFACT_MODE

    def test_atomic_write_text_honors_the_umask(self, tmp_path):
        from repro.obs.fsio import _ARTIFACT_MODE, atomic_write_text

        path = str(tmp_path / "artifact.json")
        atomic_write_text(path, "{}")
        assert os.stat(path).st_mode & 0o777 == _ARTIFACT_MODE
