"""Tests for grid expansion, the result cache and aggregation tables."""

import json

import pytest

from repro.sweep import (
    CellSpec,
    GridSpec,
    NO_PROTOCOL,
    ResultCache,
    canonical_json,
    comparison_table,
    describe_status,
    failure_table,
    make_grid,
    sweep_status,
)


def small_grid(**overrides):
    kwargs = dict(
        apps=("1d-fft", "is"),
        meshes=("2x2", "4x2"),
        rate_scales=(1.0, 2.0),
        messages_per_source=20,
    )
    kwargs.update(overrides)
    return make_grid(**kwargs)


class TestGridExpansion:
    def test_cell_count_is_axis_product(self):
        cells = small_grid().expand()
        assert len(cells) == 2 * 2 * 2  # apps x meshes x scales

    def test_expansion_is_deterministic(self):
        assert small_grid().expand() == small_grid().expand()

    def test_seed_axis_multiplies(self):
        cells = small_grid(seeds=(0, 1, 2)).expand()
        assert len(cells) == 8 * 3

    def test_mp_apps_collapse_protocol_axis(self):
        # Coherence protocols do not apply to the static strategy; one
        # cell per MP configuration, not one per protocol.
        grid = make_grid(
            apps=("1d-fft", "mg"),
            meshes=("2x2",),
            protocols=("invalidate", "update"),
            messages_per_source=20,
        )
        cells = grid.expand()
        shared = [c for c in cells if c.app == "1d-fft"]
        mp = [c for c in cells if c.app == "mg"]
        assert {c.protocol for c in shared} == {"invalidate", "update"}
        assert [c.protocol for c in mp] == [NO_PROTOCOL]

    def test_default_params_filled(self):
        cells = make_grid(apps=("1d-fft",), messages_per_source=20).expand()
        assert cells[0].params_dict == {"n": 64}

    def test_param_overrides(self):
        grid = make_grid(
            apps=("1d-fft",), app_params={"1d-fft": {"n": 128}},
            messages_per_source=20,
        )
        assert grid.expand()[0].params_dict == {"n": 128}

    def test_grid_dict_roundtrip(self):
        grid = small_grid(seeds=(3, 4), protocols=("update",))
        assert GridSpec.from_dict(grid.as_dict()) == grid

    def test_grid_json_file_roundtrip(self, tmp_path):
        grid = small_grid()
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid.as_dict()))
        assert GridSpec.from_json_file(str(path)) == grid

    def test_validation(self):
        with pytest.raises(ValueError):
            make_grid(apps=())
        with pytest.raises(ValueError):
            make_grid(apps=("quicksort",))
        with pytest.raises(ValueError):
            make_grid(apps=("1d-fft",), meshes=("0x4",))
        with pytest.raises(ValueError):
            make_grid(apps=("1d-fft",), protocols=("mesi",))
        with pytest.raises(ValueError):
            make_grid(apps=("1d-fft",), rate_scales=(0.0,))
        with pytest.raises(ValueError):
            make_grid(apps=("1d-fft",), messages_per_source=0)
        with pytest.raises(ValueError):
            make_grid(apps=("1d-fft",), app_params={"mg": {"n": 8}})


class TestCellSpec:
    def test_canonical_json_is_stable_and_sorted(self):
        cell = small_grid().expand()[0]
        text = cell.canonical_json()
        assert text == cell.canonical_json()
        assert json.loads(text) == cell.as_dict()
        assert text == canonical_json(json.loads(text))

    def test_dict_roundtrip(self):
        cell = small_grid().expand()[3]
        assert CellSpec.from_dict(cell.as_dict()) == cell

    def test_cell_id_readable(self):
        cell = small_grid().expand()[0]
        assert "1d-fft" in cell.cell_id
        assert "2x2" in cell.cell_id

    def test_seed_sequences_deterministic_and_distinct(self):
        cells = small_grid().expand()
        states = [c.seed_sequence().generate_state(2).tolist() for c in cells]
        again = [c.seed_sequence().generate_state(2).tolist() for c in cells]
        assert states == again
        # Same grid seed, different coordinates -> decorrelated roots.
        assert len({tuple(s) for s in states}) == len(states)


class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        key = cache.key_for_doc({"x": 1})
        assert cache.get(key) is None
        assert cache.misses == 1
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.stats() == {"hits": 1, "misses": 1}
        assert cache.has(key)

    def test_key_depends_on_spec_and_fingerprint(self, tmp_path):
        c1 = ResultCache(str(tmp_path), fingerprint="f1")
        c2 = ResultCache(str(tmp_path), fingerprint="f2")
        assert c1.key_for_doc({"x": 1}) != c1.key_for_doc({"x": 2})
        # Code change -> every key changes -> full recompute.
        assert c1.key_for_doc({"x": 1}) != c2.key_for_doc({"x": 1})

    def test_code_change_invalidates(self, tmp_path):
        before = ResultCache(str(tmp_path), fingerprint="rev-a")
        key = before.key_for_doc({"x": 1})
        before.put(key, {"value": 1})
        after = ResultCache(str(tmp_path), fingerprint="rev-b")
        assert after.get(after.key_for_doc({"x": 1})) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        key = cache.key_for_doc({"x": 1})
        cache.put(key, {"value": 1})
        path = tmp_path / key[:2] / (key + ".json")
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_pickle_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        key = cache.key_for_doc({"kind": "blob"})
        assert cache.get_pickle(key) is None
        assert cache.put_pickle(key, {"a": [1, 2, 3]})
        assert cache.get_pickle(key) == {"a": [1, 2, 3]}

    def test_unpicklable_is_best_effort(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        key = cache.key_for_doc({"kind": "blob"})
        assert not cache.put_pickle(key, lambda: None)
        assert cache.get_pickle(key) is None


def _ok_row(app, mesh, protocol, scale, latency, seed=0):
    return {
        "status": "ok",
        "cached": False,
        "attempts": 1,
        "cell": {
            "app": app, "params": {}, "mesh": mesh, "protocol": protocol,
            "rate_scale": scale, "seed": seed, "messages_per_source": 10,
        },
        "key": None,
        "report": {"mean_latency": latency, "extra": {"efficiency": 0.9}},
    }


def _failure_row(app, status="timeout"):
    return {
        "status": status,
        "cached": False,
        "attempts": 2,
        "cell": {
            "app": app, "params": {}, "mesh": "2x2", "protocol": "invalidate",
            "rate_scale": 1.0, "seed": 0, "messages_per_source": 10,
        },
        "key": None,
        "error": "cell exceeded 1s",
    }


class TestAggregation:
    def test_comparison_table_pivots_by_scale(self):
        rows = [
            _ok_row("1d-fft", "2x2", "invalidate", 1.0, 5.0),
            _ok_row("1d-fft", "2x2", "invalidate", 2.0, 7.0),
            _ok_row("is", "2x2", "invalidate", 1.0, 6.0),
        ]
        table = comparison_table(rows)
        assert "x1" in table and "x2" in table
        assert "1d-fft@2x2/invalidate" in table
        assert "5.000" in table and "7.000" in table
        # is has no x2 cell -> dash placeholder.
        assert "-" in table

    def test_comparison_table_averages_seeds(self):
        rows = [
            _ok_row("is", "2x2", "invalidate", 1.0, 4.0, seed=0),
            _ok_row("is", "2x2", "invalidate", 1.0, 8.0, seed=1),
        ]
        assert "6.000" in comparison_table(rows)

    def test_comparison_table_reads_extras(self):
        rows = [_ok_row("is", "2x2", "invalidate", 1.0, 4.0)]
        assert "0.900" in comparison_table(rows, value="efficiency")

    def test_comparison_table_empty(self):
        assert "no successful cells" in comparison_table([_failure_row("is")])

    def test_failure_table(self):
        table = failure_table([_failure_row("is"), _ok_row("is", "2x2", "invalidate", 1.0, 4.0)])
        assert "timeout after 2 attempt(s)" in table
        assert "cell exceeded 1s" in table
        assert failure_table([]) == "no failures"

    def test_sweep_status_counts_cached_cells(self, tmp_path):
        grid = small_grid()
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        cells = grid.expand()
        cache.put(cache.key_for(cells[0].canonical_json()), {"mean_latency": 1.0})
        status = sweep_status(grid, cache)
        assert status["total"] == len(cells)
        assert status["cached"] == 1
        assert status["pending"] == len(cells) - 1
        text = describe_status(status)
        assert "1/8 cells cached" in text
        assert "pending" in text


class TestPatternCells:
    def test_pattern_axis_expands_after_apps(self):
        grid = make_grid(
            apps=("1d-fft",),
            meshes=("4x2",),
            protocols=("invalidate",),
            patterns=("tornado", "uniform"),
        )
        cells = grid.expand()
        app_cells = [c for c in cells if c.pattern is None]
        pattern_cells = [c for c in cells if c.pattern is not None]
        assert len(app_cells) == 1
        assert [c.app for c in pattern_cells] == ["tornado", "uniform"]
        for cell in pattern_cells:
            assert cell.protocol == NO_PROTOCOL
            assert cell.params == ()
        # Pattern cells come after every app cell, so pre-existing
        # sweeps keep their cell ordering.
        assert cells[: len(app_cells)] == app_cells

    def test_pattern_only_grid(self):
        grid = make_grid(apps=(), patterns=("tornado",), meshes=("4x4x2:torus",))
        cells = grid.expand()
        assert len(cells) == 1
        assert cells[0].pattern == "tornado"

    def test_grid_needs_an_app_or_pattern(self):
        with pytest.raises(ValueError, match="app or pattern"):
            make_grid(apps=())

    def test_unknown_pattern_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            make_grid(apps=(), patterns=("zipf",))

    def test_incompatible_pattern_mesh_rejected_eagerly(self):
        # transpose cannot target a 4x2 grid (non-palindromic dims).
        with pytest.raises(ValueError, match="transpose"):
            make_grid(apps=(), patterns=("transpose",), meshes=("4x2",))

    def test_grid_round_trips_patterns(self):
        grid = make_grid(apps=(), patterns=("tornado",), meshes=("4x4:torus",))
        doc = json.loads(json.dumps(grid.as_dict()))
        assert GridSpec.from_dict(doc) == grid
        assert doc["patterns"] == ["tornado"]

    def test_cache_keys_stable_without_pattern(self):
        # Pre-existing app cells must not grow a "pattern" key: that
        # would re-key (and thus invalidate) every cached sweep result.
        grid = small_grid()
        for cell in grid.expand():
            assert "pattern" not in cell.as_dict()
            assert "pattern" not in cell.canonical_json()
        assert "patterns" not in grid.as_dict()

    def test_pattern_cell_round_trip(self):
        grid = make_grid(apps=(), patterns=("hotspot",), meshes=("4x2",))
        cell = grid.expand()[0]
        assert CellSpec.from_dict(json.loads(cell.canonical_json())) == cell
