"""Tests for the sweep runner: pool execution, cache resume, failure
isolation (raise + timeout), retries, and the sweep CLI."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.sweep import (
    ResultCache,
    SweepResult,
    make_grid,
    run_sweep,
)

# --- injectable cell functions (module-level: picklable into workers) ---


def _mini_report(doc):
    return {
        "app": doc["app"],
        "mesh": doc["mesh"],
        "mean_latency": 1.0 + doc["rate_scale"],
        "wall_seconds": 0.0,
        "extra": {"rate_scale": doc["rate_scale"]},
    }


def _ok_cell(doc):
    return _mini_report(doc)


def _raise_on_is(doc):
    if doc["app"] == "is":
        raise RuntimeError("boom")
    return _mini_report(doc)


def _hang_on_heavy(doc):
    if doc["rate_scale"] > 1.5:
        time.sleep(30.0)
    return _mini_report(doc)


def _fails_once(doc):
    marker = os.path.join(doc["params"]["marker"], f"{doc['rate_scale']}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("x")
        raise RuntimeError("transient")
    return _mini_report(doc)


def _sleep_cell(doc):
    time.sleep(0.4)
    return _mini_report(doc)


def tiny_grid(**overrides):
    kwargs = dict(
        apps=("1d-fft",),
        app_params={"1d-fft": {"n": 32}},
        meshes=("2x2",),
        rate_scales=(1.0, 2.0),
        messages_per_source=20,
    )
    kwargs.update(overrides)
    return make_grid(**kwargs)


class TestRunSweepRealCells:
    def test_end_to_end_inline_with_cache_resume(self, tmp_path):
        grid = tiny_grid()
        first = run_sweep(grid, jobs=1, cache=ResultCache(str(tmp_path)))
        assert len(first.rows) == 2
        assert not first.failures
        assert first.executed == 2
        assert first.cache_misses == 2 and first.cache_hits == 0
        report = first.ok_rows[0]["report"]
        # Cells report in the versioned run-report schema.
        assert report["schema"] == 1
        assert report["app"] == "1d-fft"
        assert report["strategy"] == "dynamic"
        assert report["messages"] > 0
        assert report["extra"]["rate_scale"] == 1.0
        assert report["extra"]["achieved_rate"] > 0

        second = run_sweep(grid, jobs=1, cache=ResultCache(str(tmp_path)))
        assert second.executed == 0
        assert second.cache_hits == 2 and second.cache_misses == 0
        assert all(row["cached"] for row in second.rows)
        # Cached reports are byte-identical to the originals.
        assert [r["report"] for r in second.rows] == [
            r["report"] for r in first.rows
        ]

    def test_pool_matches_inline(self, tmp_path):
        grid = tiny_grid()
        inline = run_sweep(grid, jobs=1)
        pooled = run_sweep(grid, jobs=2)
        key = lambda row: (row["cell"]["app"], row["cell"]["rate_scale"])
        for a, b in zip(
            sorted(inline.rows, key=key), sorted(pooled.rows, key=key)
        ):
            # Deterministic per-cell seeding: identical results modulo
            # wall clock, regardless of worker scheduling.
            ra = {k: v for k, v in a["report"].items() if k != "wall_seconds"}
            rb = {k: v for k, v in b["report"].items() if k != "wall_seconds"}
            ra["extra"] = {k: v for k, v in ra["extra"].items()}
            assert ra == rb

    def test_mp_app_cell(self):
        grid = make_grid(
            apps=("3d-fft",), app_params={"3d-fft": {"n": 8}},
            meshes=("2x2",), messages_per_source=15,
        )
        result = run_sweep(grid, jobs=1)
        assert not result.failures
        assert result.ok_rows[0]["report"]["strategy"] == "static"


class TestFailureIsolation:
    def test_raising_cell_becomes_failure_row(self, tmp_path):
        grid = tiny_grid(apps=("1d-fft", "is"))
        cache = ResultCache(str(tmp_path))
        result = run_sweep(grid, jobs=2, cache=cache, retries=1, backoff=0.01,
                           cell_fn=_raise_on_is)
        assert len(result.rows) == 4
        failures = result.failures
        assert len(failures) == 2
        for row in failures:
            assert row["cell"]["app"] == "is"
            assert row["status"] == "error"
            assert "RuntimeError: boom" in row["error"]
            assert row["attempts"] == 2  # initial + 1 retry
        assert len(result.ok_rows) == 2  # the sweep continued

        # Failures are never cached: a rerun re-executes only them.
        rerun = run_sweep(grid, jobs=1, cache=ResultCache(str(tmp_path)),
                          cell_fn=_ok_cell)
        assert rerun.executed == 2
        assert rerun.cache_hits == 2
        assert not rerun.failures

    def test_hung_cell_times_out_inline(self):
        grid = tiny_grid()
        started = time.perf_counter()
        result = run_sweep(grid, jobs=1, timeout=0.3, retries=0,
                           cell_fn=_hang_on_heavy)
        assert time.perf_counter() - started < 10.0
        timeouts = [r for r in result.rows if r["status"] == "timeout"]
        assert len(timeouts) == 1
        assert timeouts[0]["cell"]["rate_scale"] == 2.0
        assert "0.3" in timeouts[0]["error"]
        assert len(result.ok_rows) == 1

    def test_hung_cell_times_out_in_pool(self, tmp_path):
        grid = tiny_grid()
        cache = ResultCache(str(tmp_path))
        started = time.perf_counter()
        result = run_sweep(grid, jobs=2, cache=cache, timeout=0.3, retries=0,
                           cell_fn=_hang_on_heavy)
        assert time.perf_counter() - started < 10.0
        assert [r["status"] for r in result.rows] == ["ok", "timeout"]
        # Rerun executes only the timed-out cell.
        rerun = run_sweep(grid, jobs=1, cache=ResultCache(str(tmp_path)),
                          cell_fn=_ok_cell)
        assert rerun.executed == 1 and rerun.cache_hits == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_retried(self, tmp_path, jobs):
        grid = tiny_grid(
            app_params={"1d-fft": {"n": 32, "marker": str(tmp_path)}}
        )
        result = run_sweep(grid, jobs=jobs, retries=1, backoff=0.01,
                           cell_fn=_fails_once)
        assert not result.failures
        assert all(row["attempts"] == 2 for row in result.rows)

    def test_retries_bounded(self, tmp_path):
        grid = tiny_grid(apps=("is",), app_params={"is": {"n": 64}})
        result = run_sweep(grid, jobs=1, retries=2, backoff=0.01,
                           cell_fn=_raise_on_is)
        assert all(row["attempts"] == 3 for row in result.failures)

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            run_sweep(tiny_grid(), jobs=0)
        with pytest.raises(ValueError):
            run_sweep(tiny_grid(), retries=-1)


class TestParallelism:
    def test_pool_overlaps_cells(self):
        # Sleep-based cells: wall clock shows overlap independent of
        # how many physical cores the host has.
        grid = tiny_grid(rate_scales=(1.0, 2.0, 3.0, 4.0))
        started = time.perf_counter()
        result = run_sweep(grid, jobs=4, cell_fn=_sleep_cell)
        wall = time.perf_counter() - started
        assert not result.failures
        assert wall < 4 * 0.4  # serial would be >= 1.6s


class TestSweepResult:
    def test_json_roundtrip(self, tmp_path):
        result = run_sweep(tiny_grid(), jobs=1, cell_fn=_ok_cell)
        path = str(tmp_path / "sweep.json")
        result.write_json(path)
        back = SweepResult.read_json(path)
        assert back.rows == result.rows
        assert back.jobs == result.jobs
        assert back.as_dict()["schema"] == 1
        assert "mean_latency" in back.describe()

    def test_describe_mentions_failures(self):
        grid = tiny_grid(apps=("1d-fft", "is"))
        result = run_sweep(grid, jobs=1, retries=0, cell_fn=_raise_on_is)
        text = result.describe()
        assert "2 failed" in text
        assert "RuntimeError: boom" in text


class TestSweepCLI:
    ARGS = [
        "--app", "1d-fft", "--param", "n=32", "--mesh", "2x2",
        "--rate-scale", "1.0", "--rate-scale", "2.0", "--messages", "20",
    ]

    def test_run_status_and_resume(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["sweep", "run", *self.ARGS, *cache, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 cells: 2 ok" in out
        assert "2 executed" in out
        assert "mean_latency" in out

        assert main(["sweep", "status", *self.ARGS, *cache]) == 0
        assert "2/2 cells cached" in capsys.readouterr().out

        assert main(["sweep", "run", *self.ARGS, *cache, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "2 hits" in out

    def test_run_writes_report(self, capsys, tmp_path):
        report = str(tmp_path / "sweep.json")
        code = main([
            "sweep", "run", *self.ARGS, "--no-cache", "--jobs", "1",
            "--report", report,
        ])
        assert code == 0
        with open(report) as handle:
            doc = json.load(handle)
        assert doc["schema"] == 1
        assert len(doc["cells"]) == 2
        assert doc["cache"]["enabled"] is False
        capsys.readouterr()
        assert main(["sweep", "report", report, "--value", "efficiency"]) == 0
        assert "efficiency" in capsys.readouterr().out

    def test_grid_file(self, capsys, tmp_path):
        grid = tiny_grid()
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(grid.as_dict()))
        code = main([
            "sweep", "run", "--grid", str(grid_path), "--no-cache",
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "1",
        ])
        assert code == 0
        assert "2 cells: 2 ok" in capsys.readouterr().out

    def test_needs_app_or_grid(self, capsys):
        assert main(["sweep", "run"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_scoped_param_rejects_unknown_scope(self, capsys):
        code = main([
            "sweep", "run", "--app", "1d-fft", "--param", "mg:n=8",
        ])
        assert code == 2


class TestInvoke:
    """The per-cell SIGALRM timeout seam (``runner._invoke``)."""

    def test_timeout_raises_cell_timeout(self):
        from repro.sweep.runner import CellTimeoutError, _invoke

        def slow(doc):
            time.sleep(5.0)
            return doc

        with pytest.raises(CellTimeoutError):
            _invoke(slow, {"cell": 1}, timeout=0.05)

    def test_no_timeout_runs_plain(self):
        from repro.sweep.runner import _invoke

        assert _invoke(_ok_cell, tiny_grid().expand()[0].as_dict(), None)

    def test_off_main_thread_falls_back_to_no_enforcement(self):
        # Regression: signal.signal/setitimer raise ValueError off the
        # main thread, so embedders running cells on worker threads
        # crashed instead of deferring to the supervisor deadline.
        import threading

        from repro.sweep.runner import _invoke

        doc = tiny_grid().expand()[0].as_dict()
        results = {}

        def target():
            try:
                results["report"] = _invoke(_ok_cell, doc, timeout=0.001)
            except BaseException as error:  # pragma: no cover
                results["error"] = error

        worker = threading.Thread(target=target)
        worker.start()
        worker.join()
        assert "error" not in results
        assert results["report"]["app"] == doc["app"]

    def test_restores_the_callers_itimer(self):
        # Regression: _invoke used to zero ITIMER_REAL on exit, silently
        # disarming any timeout the *caller* had running.
        import signal

        from repro.sweep.runner import _invoke

        fired = []
        previous = signal.signal(signal.SIGALRM, lambda s, f: fired.append(s))
        signal.setitimer(signal.ITIMER_REAL, 60.0)
        try:
            _invoke(_ok_cell, tiny_grid().expand()[0].as_dict(), timeout=30.0)
            remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0.0)
            assert 0.0 < remaining <= 60.0
            assert signal.getsignal(signal.SIGALRM) is not signal.SIG_DFL
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        assert fired == []
