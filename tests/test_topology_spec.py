"""TopologySpec API: grammar, registry, N-D routing, 2-D equivalence.

The topology redesign (spec-first configuration, N-D meshes/tori,
chiplet hierarchies) must not perturb the paper's 2-D results: the
hypothesis suites here check that spec-built 2-D networks route and
log *bit-identically* to the legacy construction paths, and that the
new N-D routes keep the invariants the conservative parallel scheduler
and the deadlock argument rely on (minimal hops, dimension-order
monotonicity, dateline virtual-channel discipline, up*/down* ordering
on the hierarchy).
"""

import math
import pickle
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import (
    ChipletTopology,
    MeshConfig,
    MeshPartition,
    MeshTopology,
    NDMeshTopology,
    TopologySpec,
    TopologySpecError,
    TorusTopology,
    build_topology,
    make_partition,
    make_topology,
    register_topology,
    registered_topologies,
)
from repro.mesh.spec import TOPOLOGIES
from repro.simkernel.engine_parallel import (
    ScheduleTraffic,
    logs_bit_identical,
    run_parallel_mesh,
    run_serial_schedule,
)


class TestSpecParse:
    @pytest.mark.parametrize(
        "text, kind, dims",
        [
            ("4x4", "mesh", (4, 4)),
            ("4x2", "mesh", (4, 2)),
            ("4x4x2:torus", "torus", (4, 4, 2)),
            ("8x8:hypercube", "hypercube", (8, 8)),
            ("2x3x4x5:mesh", "mesh", (2, 3, 4, 5)),
        ],
    )
    def test_grammar(self, text, kind, dims):
        spec = TopologySpec.parse(text)
        assert spec.kind == kind
        assert spec.dims == dims

    def test_link_scales(self):
        spec = TopologySpec.parse("8x8x4:mesh:z=4.0")
        assert spec.link_scale == (1.0, 1.0, 4.0)
        spec2 = TopologySpec.parse("4x4:mesh:x=2,y=0.5")
        assert spec2.link_scale == (2.0, 0.5)

    def test_chiplet_grammar(self):
        spec = TopologySpec.parse("chiplet(4x4,hubs=2)")
        assert spec.kind == "chiplet"
        assert spec.dims == (4, 4)
        assert spec.hubs == 2
        assert spec.is_hierarchical
        assert spec.num_nodes == 32

    def test_whitespace_tolerated(self):
        assert TopologySpec.parse(" 4x4 ") == TopologySpec.parse("4x4")

    @pytest.mark.parametrize(
        "bad, match",
        [
            ("", "topology spec expects"),
            ("4x", "topology spec expects"),
            ("0x4", "positive"),
            ("-1x4", "positive"),
            ("4", "topology spec expects"),
            ("axb", "topology spec expects"),
            ("4x4:klein", "unknown topology"),
            ("4x4:mesh:q=2", "axis"),
            ("4x4:mesh:z=2", "axis"),
            ("4x4:mesh:x=nope", "scale"),
            ("4x4:mesh:x=0", "scale"),
            ("chiplet(4x4,hubs=0)", "hubs"),
            ("chiplet(4x4,hubs=x)", "hubs"),
        ],
    )
    def test_rejects(self, bad, match):
        with pytest.raises(TopologySpecError, match=match):
            TopologySpec.parse(bad)

    def test_spec_error_is_value_error(self):
        # Pre-redesign callers caught ValueError; that must keep working.
        with pytest.raises(ValueError):
            TopologySpec.parse("4x4:klein")

    def test_wrap_defaults_follow_kind(self):
        assert TopologySpec.parse("4x4").wrap == (False, False)
        assert TopologySpec.parse("4x4:torus").wrap == (True, True)

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power"):
            TopologySpec.parse("3x3:hypercube").build()


class TestSpecCanonical:
    @pytest.mark.parametrize(
        "text",
        ["4x4", "4x2", "4x4x2:torus", "8x8:hypercube", "8x8x4:mesh:z=4",
         "chiplet(4x4,hubs=2)", "4x4:mesh:x=2,y=0.5"],
    )
    def test_round_trip(self, text):
        spec = TopologySpec.parse(text)
        assert TopologySpec.parse(spec.canonical()) == spec

    def test_dict_round_trip(self):
        for text in ("4x4", "4x4x2:torus", "chiplet(4x4,hubs=4)",
                     "8x8x4:mesh:z=4"):
            spec = TopologySpec.parse(text)
            assert TopologySpec.from_dict(spec.as_dict()) == spec

    def test_pickle_round_trip(self):
        spec = TopologySpec.parse("4x4x2:torus")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_frozen(self):
        spec = TopologySpec.parse("4x4")
        with pytest.raises(Exception):
            spec.kind = "torus"

    def test_hashable(self):
        assert len({TopologySpec.parse("4x4"), TopologySpec.parse("4x4")}) == 1


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_topologies()
        for kind in ("mesh", "torus", "hypercube", "chiplet"):
            assert kind in names

    def test_register_and_build(self):
        def builder(spec):
            return NDMeshTopology(spec.dims)

        register_topology("testgrid", builder)
        try:
            topo = TopologySpec(kind="testgrid", dims=(3, 3)).build()
            assert topo.num_nodes == 9
        finally:
            TOPOLOGIES.pop("testgrid", None)

    def test_unknown_kind_lists_registered(self):
        with pytest.raises(ValueError, match="registered"):
            build_topology(TopologySpec(kind="klein", dims=(4, 4)))

    def test_make_topology_shim(self):
        topo = make_topology("torus", 4, 4)
        assert isinstance(topo, TorusTopology)
        assert topo.num_nodes == 16


class TestMeshConfigFacade:
    def test_spec_construction(self):
        cfg = MeshConfig(spec=TopologySpec.parse("4x4x2:torus"), virtual_channels=2)
        assert cfg.num_nodes == 32
        assert cfg.topology == "torus"

    def test_string_spec(self):
        cfg = MeshConfig(spec="4x4x2:torus", virtual_channels=2)
        assert cfg.num_nodes == 32

    def test_parse_auto_vcs(self):
        cfg = MeshConfig.parse("4x4x2:torus")
        assert cfg.virtual_channels >= 2

    def test_legacy_kwargs_warn_once(self, monkeypatch):
        import repro.mesh.config as config_mod

        monkeypatch.setattr(config_mod, "_legacy_geometry_warned", False)
        with pytest.warns(DeprecationWarning, match="TopologySpec"):
            cfg = MeshConfig(width=4, height=2)
        assert cfg.spec == TopologySpec(kind="mesh", dims=(4, 2))
        # Second construction stays silent (one warning per process).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            MeshConfig(width=4, height=2)

    def test_legacy_kwargs_match_spec(self, monkeypatch):
        import repro.mesh.config as config_mod

        monkeypatch.setattr(config_mod, "_legacy_geometry_warned", True)
        assert MeshConfig(width=4, height=2) == MeshConfig(spec="4x2")
        assert (
            MeshConfig(width=4, height=4, topology="torus", virtual_channels=2)
            == MeshConfig(spec="4x4:torus", virtual_channels=2)
        )

    def test_spec_and_legacy_conflict(self, monkeypatch):
        import repro.mesh.config as config_mod

        monkeypatch.setattr(config_mod, "_legacy_geometry_warned", True)
        with pytest.raises(ValueError, match="both"):
            MeshConfig(spec="4x4", width=4)

    def test_width_height_properties(self):
        cfg = MeshConfig(spec="4x4x2:torus", virtual_channels=2)
        assert cfg.width == 4
        assert cfg.width * cfg.height == cfg.num_nodes

    def test_torus_needs_vcs(self):
        with pytest.raises(ValueError, match="virtual channels"):
            MeshConfig(spec="4x4:torus", virtual_channels=1)

    def test_adaptive_only_on_plain_mesh(self):
        with pytest.raises(ValueError, match="adaptive"):
            MeshConfig(spec="4x4x2:mesh", routing="adaptive", virtual_channels=2)

    def test_pickles(self):
        cfg = MeshConfig(spec="4x4x2:torus", virtual_channels=2)
        assert pickle.loads(pickle.dumps(cfg)) == cfg


# ---------------------------------------------------------------------------
# 2-D equivalence: spec-built vs legacy construction
# ---------------------------------------------------------------------------

dims_2d = st.tuples(st.integers(2, 6), st.integers(1, 5))


class TestLegacyEquivalence:
    @given(dims=dims_2d, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mesh_routes_identical(self, dims, data):
        width, height = dims
        legacy = MeshTopology(width, height)
        built = TopologySpec.parse(f"{width}x{height}").build()
        n = width * height
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        assert built.route(src, dst) == legacy.route(src, dst)
        assert built.hops(src, dst) == legacy.hops(src, dst)
        assert built.neighbors(src) == legacy.neighbors(src)

    @given(dims=dims_2d, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_torus_routes_identical(self, dims, data):
        width, height = dims
        legacy = TorusTopology(width, height)
        built = TopologySpec.parse(f"{width}x{height}:torus").build()
        n = width * height
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        route_legacy = legacy.route(src, dst)
        route_built = built.route(src, dst)
        assert [(h.src, h.dst, h.vclass) for h in route_built] == [
            (h.src, h.dst, h.vclass) for h in route_legacy
        ]

    @given(dims=dims_2d, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mesh_route_matches_xy_oracle(self, dims, data):
        """Independent XY oracle: x to the column, then y to the row."""
        width, height = dims
        topo = TopologySpec.parse(f"{width}x{height}").build()
        n = width * height
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        sx, sy = src % width, src // width
        dx, dy = dst % width, dst // width
        expected = []
        x, y = sx, sy
        while x != dx:
            nxt = x + (1 if dx > x else -1)
            expected.append((y * width + x, y * width + nxt))
            x = nxt
        while y != dy:
            nxt = y + (1 if dy > y else -1)
            expected.append((y * width + x, nxt * width + x))
            y = nxt
        got = [(h.src, h.dst) for h in topo.route(src, dst)]
        assert got == expected
        assert len(got) == abs(sx - dx) + abs(sy - dy)

    @pytest.mark.parametrize("spec_text, legacy_kwargs", [
        ("4x2", dict(width=4, height=2)),
        ("4x4:torus", dict(width=4, height=4, topology="torus",
                           virtual_channels=2)),
        ("4x4:hypercube", dict(width=4, height=4, topology="hypercube")),
    ])
    def test_netlogs_bit_identical(self, spec_text, legacy_kwargs, monkeypatch):
        """The paper's 2-D configs produce bit-identical activity logs
        whether configured through the spec grammar or legacy kwargs."""
        import repro.mesh.config as config_mod

        monkeypatch.setattr(config_mod, "_legacy_geometry_warned", True)
        spec_cfg = MeshConfig(
            spec=spec_text,
            virtual_channels=legacy_kwargs.get("virtual_channels", 1),
        )
        legacy_cfg = MeshConfig(**legacy_kwargs)
        assert spec_cfg == legacy_cfg
        traffic = ScheduleTraffic.compile_pattern(
            spec_cfg, pattern="uniform", messages_per_source=15, seed=7
        )
        a = run_serial_schedule(spec_cfg, traffic)
        b = run_serial_schedule(legacy_cfg, traffic)
        assert logs_bit_identical(a.log, b.log)
        assert a.clock == b.clock
        assert a.events_fired == b.events_fired


# ---------------------------------------------------------------------------
# N-D routing invariants
# ---------------------------------------------------------------------------

dims_nd = (
    st.lists(st.integers(1, 4), min_size=2, max_size=4)
    .map(tuple)
    .filter(lambda d: 2 <= math.prod(d) <= 96)
)


def _manhattan(topo, src, dst):
    s, d = topo.coordinates(src), topo.coordinates(dst)
    total = 0
    for axis, (a, b) in enumerate(zip(s, d)):
        span = abs(a - b)
        if topo.wrap[axis] and topo.dims[axis] > 1:
            span = min(span, topo.dims[axis] - span)
        total += span
    return total


class TestNDRouting:
    @given(dims=dims_nd, wrap=st.booleans(), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_routes_minimal_and_connected(self, dims, wrap, data):
        topo = NDMeshTopology(dims, wrap=(wrap,) * len(dims))
        n = topo.num_nodes
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        route = topo.route(src, dst)
        # Minimal: exactly the (wrap-aware) Manhattan distance.
        assert len(route) == _manhattan(topo, src, dst) == topo.hops(src, dst)
        node = src
        for hop in route:
            assert hop.src == node
            assert hop.dst in topo.neighbors(node)
            node = hop.dst
        assert node == dst

    @given(dims=dims_nd, wrap=st.booleans(), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_dimension_order_monotone(self, dims, wrap, data):
        """Once a route starts correcting axis k, axes < k never change
        again -- the dimension-order property region slicing relies on."""
        topo = NDMeshTopology(dims, wrap=(wrap,) * len(dims))
        n = topo.num_nodes
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        highest_seen = -1
        for hop in topo.route(src, dst):
            a, b = topo.coordinates(hop.src), topo.coordinates(hop.dst)
            changed = [axis for axis in range(len(dims)) if a[axis] != b[axis]]
            assert len(changed) == 1
            assert changed[0] >= highest_seen
            highest_seen = changed[0]

    @given(size=st.integers(3, 9), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_odd_torus_wrap_shorter_ring(self, size, data):
        """On any ring (odd sizes included) the route takes the strictly
        shorter direction, wrapping through the dateline when needed."""
        topo = NDMeshTopology((size, 1), wrap=(True, True))
        src = data.draw(st.integers(0, size - 1))
        dst = data.draw(st.integers(0, size - 1))
        forward = (dst - src) % size
        backward = (src - dst) % size
        route = topo.route(src, dst)
        assert len(route) == min(forward, backward)
        wrapped = [h for h in route if abs(h.dst - h.src) > 1]
        assert len(wrapped) <= 1
        if wrapped:
            # Every hop after the dateline rides the escape class.
            after = route[route.index(wrapped[0]) + 1:]
            assert all(h.vclass == 1 for h in after)

    def test_scaled_links_carry_scale(self):
        spec = TopologySpec.parse("4x4x2:mesh:z=4.0")
        topo = spec.build()
        # 0 -> 16 is one +z hop: scale 4; in-plane hops keep scale 1.
        route_z = topo.route(0, 16)
        assert [h.scale for h in route_z] == [4.0]
        route_x = topo.route(0, 1)
        assert [h.scale for h in route_x] == [1.0]

    def test_scale_one_is_default(self):
        topo = TopologySpec.parse("4x4").build()
        assert all(
            h.scale == 1.0 for h in topo.route(0, topo.num_nodes - 1)
        )


class TestChipletRouting:
    def test_up_down_hub_route(self):
        topo = ChipletTopology((4, 4), hubs=2)
        # 3 (chiplet 0) -> 20 (chiplet 1, local 4): up to gateway 0,
        # hub hop to gateway 16, down to 20.
        route = topo.route(3, 20)
        assert route[0].src == 3
        assert route[-1].dst == 20
        gateways = {0, 16}
        hub_hops = [h for h in route if h.src in gateways and h.dst in gateways]
        assert len(hub_hops) == 1

    @given(hubs=st.integers(2, 4), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_up_down_deadlock_freedom(self, hubs, data):
        """No vclass-0 (up) hop ever follows a vclass-1 (down) hop, so
        the channel dependence graph is acyclic."""
        topo = ChipletTopology((3, 3), hubs=hubs)
        n = topo.num_nodes
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        route = topo.route(src, dst)
        node = src
        seen_down = False
        for hop in route:
            assert hop.src == node
            assert hop.dst in topo.neighbors(node)
            if hop.vclass == 1:
                seen_down = True
            elif seen_down:
                pytest.fail(f"up hop after down hop in {route}")
            node = hop.dst
        assert node == dst

    def test_required_vclasses(self):
        cfg = MeshConfig.parse("chiplet(4x4,hubs=2)")
        assert cfg.virtual_channels >= 2

    def test_same_chiplet_stays_local(self):
        topo = ChipletTopology((4, 4), hubs=2)
        for hop in topo.route(17, 30):
            assert topo.chiplet_of(hop.src) == topo.chiplet_of(hop.dst) == 1


# ---------------------------------------------------------------------------
# N-D partitioning and parallel equivalence
# ---------------------------------------------------------------------------

class TestNDPartition:
    def test_slices_highest_dimension(self):
        cfg = MeshConfig(spec="4x3x4:mesh")
        part = make_partition(cfg, regions=2)
        assert part.depth == 4
        assert part.plane == 12
        assert part.bounds == ((0, 2), (2, 4))
        sub = part.region_config(0)
        assert sub.spec.dims == (4, 3, 2)

    def test_lookahead_uses_sliced_axis_scale(self):
        cfg = MeshConfig(spec="4x4x2:mesh:z=4.0")
        part = make_partition(cfg, regions=2)
        assert part.lookahead() == cfg.routing_time + cfg.channel_time * 4.0

    def test_rejects_wrap_and_hierarchy(self):
        with pytest.raises(ValueError, match="mesh"):
            make_partition(MeshConfig(spec="4x4x2:torus", virtual_channels=2), 2)
        with pytest.raises(ValueError, match="mesh"):
            make_partition(MeshConfig.parse("chiplet(4x4,hubs=2)"), 2)

    def test_route_legs_cross_region_3d(self):
        cfg = MeshConfig(spec="2x2x4:mesh")
        part = make_partition(cfg, regions=2)
        legs = part.route_legs(0, 15)
        assert [leg[0] for leg in legs] == [0, 1]
        # Hand-off happens at the destination's in-plane offset.
        assert legs[0][2] % part.plane == 15 % part.plane

    def test_parallel_matches_serial_3d_layer_local(self):
        """Boundary-free (layer-local) traffic on a 3-D mesh is
        bit-identical between the serial and parallel schedulers --
        the same guarantee the 2-D suite pins for row-local traffic."""
        cfg = MeshConfig(spec="3x2x4:mesh")
        traffic = ScheduleTraffic.compile_pattern(
            cfg, pattern="local", messages_per_source=12, seed=11
        )
        serial = run_serial_schedule(cfg, traffic)
        parallel = run_parallel_mesh(cfg, traffic, regions=2)
        assert parallel.rounds == 1
        assert logs_bit_identical(serial.log, parallel.merged_log())

    def test_parallel_conserves_cross_region_3d(self):
        """Cross-region traffic is re-serialized per leg (latencies
        legitimately differ), but endpoints, payloads and route lengths
        are exactly conserved on the 3-D mesh too."""
        cfg = MeshConfig(spec="3x2x4:mesh")
        traffic = ScheduleTraffic.compile_pattern(
            cfg, pattern="uniform", messages_per_source=12, seed=11
        )
        serial = run_serial_schedule(cfg, traffic)
        merged = run_parallel_mesh(cfg, traffic, regions=2).merged_log()
        assert len(merged) == len(serial.log) == traffic.message_count
        key = lambda r: (r.src, r.dst, r.length_bytes, r.hops)
        assert {r.msg_id: key(r) for r in serial.log.records} == {
            r.msg_id: key(r) for r in merged.records
        }

    def test_parallel_matches_serial_scaled_links(self):
        cfg = MeshConfig(spec="2x2x4:mesh:z=2.0")
        traffic = ScheduleTraffic.compile_pattern(
            cfg, pattern="local", messages_per_source=10, seed=5
        )
        serial = run_serial_schedule(cfg, traffic)
        parallel = run_parallel_mesh(cfg, traffic, regions=2)
        assert logs_bit_identical(serial.log, parallel.merged_log())
