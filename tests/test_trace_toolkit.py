"""Tests for trace records, the profiler, and both replay modes."""

import numpy as np
import pytest

from repro.mesh import MeshConfig, MeshNetwork
from repro.simkernel import Simulator
from repro.trace import CommEvent, TraceLog, profile_trace, replay_trace


def build_trace(entries):
    """entries: list of (src, dst, nbytes, post_time)."""
    trace = TraceLog()
    for src, dst, nbytes, post in entries:
        trace.record(src=src, dst=dst, length_bytes=nbytes, kind="p2p", tag=0, post_time=post)
    return trace


def fresh_network(width=4, height=2):
    sim = Simulator()
    return MeshNetwork(sim, MeshConfig(width=width, height=height))


class TestTraceLog:
    def test_gap_derivation_per_source(self):
        trace = build_trace([(0, 1, 8, 10.0), (0, 2, 8, 25.0), (1, 0, 8, 30.0)])
        events = trace.events
        assert events[0].gap == 10.0  # first event of source 0
        assert events[1].gap == 15.0
        assert events[2].gap == 30.0  # first event of source 1

    def test_views(self):
        trace = build_trace([(0, 1, 10, 1.0), (1, 0, 20, 2.0), (0, 2, 30, 3.0)])
        assert trace.sources() == [0, 1]
        assert len(trace.by_source(0)) == 2
        assert trace.total_bytes() == 60
        assert trace.span() == 2.0

    def test_csv_roundtrip(self, tmp_path):
        trace = build_trace([(0, 1, 8, 1.0), (2, 3, 64, 5.0)])
        path = str(tmp_path / "trace.csv")
        trace.write_csv(path)
        loaded = TraceLog.read_csv(path)
        assert len(loaded) == 2
        assert loaded.events[0].dst == 1
        assert loaded.events[1].length_bytes == 64

    def test_event_validation(self):
        with pytest.raises(ValueError):
            CommEvent(src=0, dst=1, length_bytes=-1, kind="x", tag=0, post_time=0, gap=0)
        with pytest.raises(ValueError):
            CommEvent(src=0, dst=1, length_bytes=1, kind="x", tag=0, post_time=0, gap=-1)


class TestProfiler:
    def test_profile_numbers(self):
        trace = build_trace(
            [(0, 1, 10, 1.0), (0, 2, 10, 2.0), (0, 1, 10, 3.0), (1, 0, 50, 4.0)]
        )
        profile = profile_trace(trace, num_nodes=4)
        assert profile.total_messages == 4
        assert profile.total_bytes == 80
        assert profile.per_source_messages == {0: 3, 1: 1}
        assert profile.destination_matrix[0, 1] == 2
        assert profile.mean_gap > 0
        assert "messages: 4" in profile.describe()

    def test_profile_rejects_out_of_range(self):
        trace = build_trace([(0, 9, 8, 1.0)])
        with pytest.raises(ValueError):
            profile_trace(trace, num_nodes=4)

    def test_profile_rejects_negative_src(self):
        # Regression: src < 0 used to index the matrix from the end.
        trace = build_trace([(-1, 2, 8, 1.0)])
        with pytest.raises(ValueError, match="negative rank"):
            profile_trace(trace, num_nodes=4)

    def test_profile_rejects_negative_dst(self):
        trace = build_trace([(0, -2, 8, 1.0)])
        with pytest.raises(ValueError, match="negative rank"):
            profile_trace(trace, num_nodes=4)

    def test_profile_empty_trace(self):
        profile = profile_trace(TraceLog(), num_nodes=4)
        assert profile.total_messages == 0
        assert profile.mean_gap == 0.0


class TestReplay:
    def test_dependency_replay_delivers_everything(self):
        trace = build_trace([(0, 7, 64, 5.0), (0, 3, 8, 10.0), (5, 2, 32, 8.0)])
        net = fresh_network()
        log = replay_trace(trace, net, mode="dependency")
        assert len(log) == 3
        assert {(r.src, r.dst) for r in log} == {(0, 7), (0, 3), (5, 2)}

    def test_dependency_replay_preserves_source_order(self):
        trace = build_trace([(0, 7, 64, 5.0), (0, 3, 8, 10.0)])
        net = fresh_network()
        log = replay_trace(trace, net, mode="dependency")
        by_src0 = log.by_source(0)
        assert by_src0[0].dst == 7
        assert by_src0[1].dst == 3
        assert by_src0[1].inject_time >= by_src0[0].deliver_time + 5.0 - 1e-9

    def test_open_loop_uses_absolute_times(self):
        trace = build_trace([(0, 7, 64, 5.0), (0, 3, 8, 10.0)])
        net = fresh_network()
        log = replay_trace(trace, net, mode="open-loop")
        times = sorted(r.inject_time for r in log)
        assert times == [5.0, 10.0]

    def test_open_loop_ignores_contention_feedback(self):
        # Two big back-to-back messages from one source: dependency
        # replay spaces the second after the first completes; open loop
        # injects it at its traced time regardless.
        trace = build_trace([(0, 3, 4096, 0.0), (0, 3, 4096, 1.0)])
        dep_log = replay_trace(trace, fresh_network(), mode="dependency")
        open_log = replay_trace(trace, fresh_network(), mode="open-loop")
        dep_second = dep_log.by_source(0)[1]
        open_second = sorted(open_log.by_source(0), key=lambda r: r.inject_time)[1]
        assert open_second.inject_time == 1.0
        assert dep_second.inject_time > open_second.inject_time

    def test_time_scale(self):
        trace = build_trace([(0, 1, 8, 4.0)])
        net = fresh_network()
        log = replay_trace(trace, net, mode="dependency", time_scale=10.0)
        assert log.records[0].inject_time == pytest.approx(40.0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            replay_trace(TraceLog(), fresh_network(), mode="magic")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            replay_trace(TraceLog(), fresh_network(), time_scale=0.0)

    def test_rank_overflow_rejected(self):
        trace = build_trace([(0, 12, 8, 1.0)])
        with pytest.raises(ValueError):
            replay_trace(trace, fresh_network())
